#include "replay/replay.hh"

#include <algorithm>
#include <map>

#include "am/cluster.hh"
#include "base/logging.hh"

namespace nowcluster {

ReplaySchedule
extractSchedule(const MessageTrace &trace, int nprocs,
                const LogGPParams &recorded_on)
{
    ReplaySchedule sched;
    sched.nprocs = nprocs;
    sched.steps.resize(nprocs);

    // Per-source sequences, in issue order (the trace appends sends in
    // issue order per processor already).
    std::vector<std::vector<const TraceRecord *>> by_src(nprocs);
    for (const TraceRecord &r : trace.records()) {
        panic_if(r.src < 0 || r.src >= nprocs,
                 "trace source %d outside %d-proc cluster", r.src,
                 nprocs);
        by_src[r.src].push_back(&r);
    }

    const Tick send_cost = recorded_on.sendOverhead();
    for (int p = 0; p < nprocs; ++p) {
        Tick prev_issue = 0;
        bool first = true;
        auto &steps = sched.steps[p];
        for (std::size_t i = 0; i < by_src[p].size(); ++i) {
            const TraceRecord &r = *by_src[p][i];
            // Replies and acks regenerate during replay.
            if (r.kind == PacketKind::Reply)
                continue;
            if (r.kind == PacketKind::BulkFrag) {
                // Coalesce a run of fragments to the same destination
                // into one bulk operation.
                std::uint64_t bytes = r.bytes;
                std::size_t j = i + 1;
                while (j < by_src[p].size() &&
                       by_src[p][j]->kind == PacketKind::BulkFrag &&
                       by_src[p][j]->dst == r.dst &&
                       by_src[p][j]->issuedAt - by_src[p][j - 1]->issuedAt
                           < usec(200)) {
                    bytes += by_src[p][j]->bytes;
                    ++j;
                }
                Tick gap = first ? 0 : r.issuedAt - prev_issue;
                steps.push_back(
                    {std::max<Tick>(0, gap - send_cost), r.dst, true,
                     static_cast<std::uint32_t>(
                         std::min<std::uint64_t>(bytes, 1u << 30))});
                prev_issue = by_src[p][j - 1]->issuedAt;
                first = false;
                i = j - 1;
                continue;
            }
            Tick gap = first ? 0 : r.issuedAt - prev_issue;
            steps.push_back({std::max<Tick>(0, gap - send_cost), r.dst,
                             false, 0});
            prev_issue = r.issuedAt;
            first = false;
        }
    }
    return sched;
}

ReplayResult
replaySchedule(const ReplaySchedule &schedule, const LogGPParams &params)
{
    ReplayResult result;
    const int p = schedule.nprocs;
    if (p == 0)
        return result;

    // Scratch target buffers sized to the largest bulk step per node.
    std::size_t max_bulk = 1;
    for (const auto &steps : schedule.steps) {
        for (const ReplayStep &s : steps)
            max_bulk = std::max<std::size_t>(max_bulk, s.bytes);
    }
    std::vector<std::vector<std::uint8_t>> scratch(p);
    for (auto &b : scratch)
        b.assign(max_bulk, 0);
    std::vector<std::uint8_t> payload(max_bulk, 0xEE);

    Cluster cluster(p, params);
    int finished = 0;
    bool stop = false;
    int sink = cluster.registerHandler([](AmNode &, Packet &) {});
    int h_done = cluster.registerHandler(
        [&](AmNode &, Packet &) { ++finished; });
    int h_stop = cluster.registerHandler(
        [&](AmNode &, Packet &) { stop = true; });

    bool ok = cluster.run([&](AmNode &n) {
        const int me = n.id();
        for (const ReplayStep &s : schedule.steps[me]) {
            if (s.think > 0)
                n.compute(s.think);
            if (s.bulk) {
                n.store(s.dst, scratch[s.dst].data(), payload.data(),
                        s.bytes);
            } else {
                n.oneWay(s.dst, sink);
            }
        }
        n.storeSync();
        // Completion protocol: everyone reports to 0; 0 broadcasts
        // stop so receivers keep polling until all traffic landed.
        if (me == 0) {
            ++finished;
            n.pollUntil([&] { return finished == p; },
                        "replay completion wait");
            stop = true;
            for (int q = 1; q < p; ++q)
                n.oneWay(q, h_stop);
        } else {
            n.oneWay(0, h_done);
            n.pollUntil([&] { return stop; }, "replay stop wait");
        }
    }, 3600 * kSec);

    result.ok = ok;
    result.makespan = cluster.runtime();
    result.sends = schedule.totalSends();
    return result;
}

MessageTrace
messageTraceFromObs(const SpanTracer &tracer)
{
    MessageTrace trace;
    for (const ObsMessage &m : tracer.messages()) {
        if (m.retx)
            continue;
        trace.record(m.issued, m.ready, m.src, m.dst,
                     static_cast<PacketKind>(m.kind), m.bytes);
    }
    return trace;
}

} // namespace nowcluster
