/**
 * @file
 * LpDag implementation: Kahn topological order + weighted longest path.
 */

#include "backend/lp.hh"

#include <algorithm>

namespace nowcluster::backend {

int
LpDag::addNode()
{
    prepared_ = false;
    return static_cast<int>(nodeCount_++);
}

void
LpDag::addEdge(int src, int dst, const LinCost &cost)
{
    prepared_ = false;
    edges_.push_back({src, dst, cost});
}

bool
LpDag::prepare()
{
    const int n = static_cast<int>(nodeCount_);
    std::vector<int> indeg(nodeCount_, 0);
    for (const Edge &e : edges_) {
        if (e.dst < 0 || e.dst >= n)
            return false;
        if (e.src < kSource || e.src >= n)
            return false;
        if (e.src != kSource)
            indeg[e.dst]++;
    }

    topo_.clear();
    topo_.reserve(nodeCount_);
    std::vector<int> frontier;
    for (int v = 0; v < n; v++)
        if (indeg[v] == 0)
            frontier.push_back(v);
    // Out-adjacency, built once for the sort only.
    std::vector<std::vector<int>> out(nodeCount_);
    for (const Edge &e : edges_)
        if (e.src != kSource)
            out[e.src].push_back(e.dst);
    while (!frontier.empty()) {
        int v = frontier.back();
        frontier.pop_back();
        topo_.push_back(v);
        for (int w : out[v])
            if (--indeg[w] == 0)
                frontier.push_back(w);
    }
    if (topo_.size() != nodeCount_) {
        prepared_ = false;
        return false;
    }

    // Lay the in-edges out contiguously in *visit* order: the solve
    // loop then streams csrSrc_/csrCost_ front to back, one cache-
    // friendly pass per operating point.
    std::vector<int> count(nodeCount_, 0);
    for (const Edge &e : edges_)
        count[e.dst]++;
    std::vector<int> slot(nodeCount_ + 1, 0);
    csrOff_.assign(nodeCount_ + 1, 0);
    for (std::size_t k = 0; k < topo_.size(); k++)
        csrOff_[k + 1] = csrOff_[k] + count[topo_[k]];
    std::vector<int> pos(nodeCount_, 0); // node id -> topo position
    for (std::size_t k = 0; k < topo_.size(); k++)
        pos[topo_[k]] = static_cast<int>(k);
    csrSrc_.assign(edges_.size(), 0);
    cFixed_.assign(edges_.size(), 0);
    cPerL_.assign(edges_.size(), 0);
    cPerO_.assign(edges_.size(), 0);
    cPerG_.assign(edges_.size(), 0);
    cPerGb_.assign(edges_.size(), 0);
    for (std::size_t k = 0; k < topo_.size(); k++)
        slot[k] = csrOff_[k];
    for (std::size_t i = 0; i < edges_.size(); i++) {
        const Edge &e = edges_[i];
        int at = slot[pos[e.dst]]++;
        // Sources are stored as *topo positions*: the solve loop then
        // walks one dense array front to back and its predecessor
        // loads land on recently written, still-cached slots.
        csrSrc_[at] = e.src == kSource ? kSource : pos[e.src];
        cFixed_[at] = static_cast<float>(e.cost.fixed);
        cPerL_[at] = static_cast<float>(e.cost.perL);
        cPerO_[at] = static_cast<float>(e.cost.perO);
        cPerG_[at] = static_cast<float>(e.cost.perG);
        cPerGb_[at] = static_cast<float>(e.cost.perGb);
    }
    prepared_ = true;
    return true;
}

LpSolution
LpDag::solve(const LpParams &params) const
{
    LpSolution sol;
    if (!prepared_)
        return sol;
    sol.ok = true;
    if (nodeCount_ == 0)
        return sol;

    // Longest path: every node is reachable from the virtual source
    // (zero-indegree nodes start at time 0, matching the LP's implicit
    // start >= 0 constraint). Scratch is thread-local so concurrent
    // sweep points neither share state nor reallocate per solve.
    thread_local std::vector<double> dist;
    thread_local std::vector<int> pred; // binding csr slot, or -1
    dist.resize(nodeCount_); // every entry is written in pass 2
    pred.resize(nodeCount_);

    // Pass 1: evaluate every edge weight at the operating point. One
    // flat loop over parallel arrays, which the compiler vectorizes.
    const std::size_t m = csrSrc_.size();
    thread_local std::vector<float> w;
    w.resize(m);
    {
        const float pL = static_cast<float>(params.L);
        const float pO = static_cast<float>(params.o);
        const float pG = static_cast<float>(params.g);
        const float pGb = static_cast<float>(params.Gb);
        const float *fx = cFixed_.data(), *cl = cPerL_.data();
        const float *co = cPerO_.data(), *cg = cPerG_.data();
        const float *cb = cPerGb_.data();
        for (std::size_t s = 0; s < m; s++) {
            float v = fx[s] + cl[s] * pL + co[s] * pO + cg[s] * pG +
                      cb[s] * pGb;
            w[s] = v > 0 ? v : 0;
        }
    }

    // Pass 2: longest-path propagation in topo position order.
    int argmax = -1;
    double maxDist = -1.0;
    const std::size_t n = topo_.size();
    for (std::size_t k = 0; k < n; k++) {
        double best = 0.0;
        int bestSlot = -1;
        const int lo = csrOff_[k], hi = csrOff_[k + 1];
        for (int s = lo; s < hi; s++) {
            const int src = csrSrc_[s];
            const double d =
                (src == kSource ? 0.0 : dist[src]) + w[s];
            if (d > best) {
                best = d;
                bestSlot = s;
            }
        }
        dist[k] = best;
        pred[k] = bestSlot;
        if (best > maxDist) {
            maxDist = best;
            argmax = static_cast<int>(k);
        }
    }
    if (argmax < 0)
        return sol;
    sol.makespan = maxDist;

    // Walk the binding path back to the source, summing coefficients.
    // A clamped edge (its weight hit the zero floor) contributes no
    // slope: its weight is locally constant in every parameter.
    int v = argmax;
    while (v >= 0 && pred[v] >= 0) {
        const int s = pred[v];
        if (w[s] > 0) {
            sol.gradient.fixed += cFixed_[s];
            sol.gradient.perL += cPerL_[s];
            sol.gradient.perO += cPerO_[s];
            sol.gradient.perG += cPerG_[s];
            sol.gradient.perGb += cPerGb_[s];
        }
        sol.pathEdges++;
        v = csrSrc_[s];
    }
    return sol;
}

} // namespace nowcluster::backend
