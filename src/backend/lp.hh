/**
 * @file
 * A small linear-program solver for LogGP sweep evaluation.
 *
 * The message-dependency graph of one traced run is a DAG whose edge
 * weights are *linear functions* of the four LogGP parameters: an edge
 * costs `fixed + perL*L + perO*o + perG*g + perGb*G`. The LP over
 * per-event start times ("every event starts no earlier than each
 * predecessor's start plus the connecting edge's cost, minimize the
 * makespan") therefore needs no external solver: its optimum is the
 * weighted longest path from source to sink, computable in one
 * topological pass, and the dual solution -- how much the makespan
 * moves per unit of each parameter -- is the sum of the binding path's
 * edge coefficients. That sum is exactly the paper's intuition made
 * precise: dT/dL is the number of wire crossings on the critical path,
 * dT/do the number of overhead phases on it, and so on.
 *
 * Built once per traced run (src/backend/model.hh), solved once per
 * sweep point: every (L, o, g, G) evaluation is O(V + E) over the
 * prepared graph -- milliseconds where a simulation costs seconds.
 */

#ifndef NOWCLUSTER_BACKEND_LP_HH_
#define NOWCLUSTER_BACKEND_LP_HH_

#include <cstddef>
#include <vector>

namespace nowcluster::backend {

/** One LogGP operating point, in the solver's native units (ticks for
 *  L/o/g, ticks-per-byte for G). */
struct LpParams
{
    double L = 0;  ///< Total one-way latency.
    double o = 0;  ///< Added per-side overhead (the knob's addedO).
    double g = 0;  ///< Injection gap.
    double Gb = 0; ///< Bulk gap per byte.
};

/** An edge weight that is linear in the LogGP parameters. */
struct LinCost
{
    double fixed = 0; ///< Parameter-independent part (ticks).
    double perL = 0;  ///< Wire crossings: coefficient of L.
    double perO = 0;  ///< Overhead phases: coefficient of added o.
    double perG = 0;  ///< Gap stalls: coefficient of g.
    double perGb = 0; ///< Bulk bytes serialized: coefficient of G.

    /** Evaluate at an operating point (clamped at zero: a knob below
     *  the recorded baseline cannot make an edge take negative time). */
    double
    eval(const LpParams &p) const
    {
        double w = fixed + perL * p.L + perO * p.o + perG * p.g +
                   perGb * p.Gb;
        return w > 0 ? w : 0;
    }

    LinCost &
    operator+=(const LinCost &c)
    {
        fixed += c.fixed;
        perL += c.perL;
        perO += c.perO;
        perG += c.perG;
        perGb += c.perGb;
        return *this;
    }
};

/** The solved LP: the makespan and its parameter sensitivities. */
struct LpSolution
{
    bool ok = false;
    double makespan = 0;
    /** Coefficient sums along the binding (critical) path: the dual.
     *  gradient.perL is dT/dL, gradient.perO is dT/do, and so on;
     *  gradient.fixed is the path's parameter-independent time. */
    LinCost gradient;
    /** Edges on the critical path. */
    std::size_t pathEdges = 0;
};

/**
 * The dependency DAG. Nodes are events (span starts plus one sink);
 * edges carry LinCost weights. addEdge accepts kSource as a source to
 * anchor an event to virtual time zero. prepare() topologically orders
 * the graph once; solve() then evaluates any operating point without
 * touching the structure, so it is const and safe to call from many
 * threads concurrently.
 */
class LpDag
{
  public:
    static constexpr int kSource = -1;

    /** Add an event; returns its id (dense, starting at 0). */
    int addNode();

    /** Constrain start(dst) >= start(src) + cost(params). */
    void addEdge(int src, int dst, const LinCost &cost);

    /**
     * Topologically order the graph. Must be called (once) before
     * solve(); returns false if the edges form a cycle, which a
     * well-formed trace cannot produce (timestamps only move forward)
     * but a corrupt binary trace could.
     */
    bool prepare();

    /** Longest source-to-anywhere path at one operating point. The
     *  makespan is the largest completion time over all nodes; the
     *  gradient follows the binding path back to the source. */
    LpSolution solve(const LpParams &params) const;

    std::size_t nodeCount() const { return nodeCount_; }
    std::size_t edgeCount() const { return edges_.size(); }

  private:
    struct Edge
    {
        int src;
        int dst;
        LinCost cost;
    };

    std::size_t nodeCount_ = 0;
    std::vector<Edge> edges_;
    /** Node order that respects every edge (filled by prepare). */
    std::vector<int> topo_;
    // Compressed in-edge adjacency (filled by prepare): solve() is the
    // per-sweep-point hot loop. Edge weights are evaluated in one
    // vectorizable pass over five parallel float coefficient arrays,
    // then a second tight pass propagates longest-path distances in
    // topological position order, so predecessor loads land on
    // recently written slots. Floats are plenty: coefficients are
    // O(path-count) values whose rounding error is parts-per-ten-
    // million of the makespan, and the residual calibration in the
    // model layer absorbs it exactly at the base point.
    std::vector<int> csrOff_; ///< nodeCount_+1 offsets into csr*.
    std::vector<int> csrSrc_; ///< Source *topo position* (or kSource).
    std::vector<float> cFixed_, cPerL_, cPerO_, cPerG_, cPerGb_;
    bool prepared_ = false;
};

} // namespace nowcluster::backend

#endif // NOWCLUSTER_BACKEND_LP_HH_
