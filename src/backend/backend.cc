/**
 * @file
 * The three ExperimentBackend implementations and backend selection.
 */

#include "backend/backend.hh"

#include <cmath>
#include <cstdio>

#include "base/logging.hh"

namespace nowcluster::backend {

namespace {

/** %.17g rendering so model keys never alias distinct doubles. */
void
putD(std::string &out, double v)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g|", v);
    out += buf;
}

void
putI(std::string &out, long long v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld|", v);
    out += buf;
}

/**
 * The model identity of a point: everything that shapes the traced
 * base run *except* the four swept LogGP knobs (overhead, gap,
 * latency, bulk bandwidth), which the LP re-times, and the run budget,
 * which no longer bounds a solved LP. Two points differing only in
 * swept knobs share one model; anything else forces its own trace.
 */
std::string
modelKeyOf(const RunPoint &pt)
{
    const RunConfig &c = pt.config;
    const Knobs &k = c.knobs;
    std::string out = pt.app + "|" + c.machine.name + "|";
    putI(out, c.nprocs);
    putD(out, c.scale);
    putI(out, static_cast<long long>(c.seed));
    putD(out, k.occupancyUs);
    putI(out, k.window);
    putI(out, k.fabricHosts);
    putD(out, k.fabricLinkMBps);
    putI(out, k.topo);
    putI(out, k.topoHosts);
    putD(out, k.topoLinkMBps);
    putD(out, k.topoOversub);
    putD(out, k.topoHopUs);
    putI(out, k.simShards);
    out += (!k.collAlg.empty() ? k.collAlg : envConfig().collAlg) + "|";
    return out;
}

/** The base point a model is traced at: the swept knobs cleared back
 *  to the machine baseline, validation off (the traced run's output
 *  check is not the sweep's business). */
RunPoint
basePointOf(const RunPoint &pt)
{
    RunPoint base = pt;
    base.config.knobs.overheadUs = -1;
    base.config.knobs.gapUs = -1;
    base.config.knobs.latencyUs = -1;
    base.config.knobs.bulkMBps = -1;
    base.config.validate = false;
    base.config.trace = nullptr;
    base.config.obs = nullptr;
    return base;
}

/** The LogGP parameters a config resolves to, the way runApp does. */
LogGPParams
resolvedParams(const RunConfig &c)
{
    LogGPParams p = c.machine.params;
    c.knobs.applyTo(p);
    return p;
}

} // namespace

const char *
backendKindName(BackendKind kind)
{
    switch (kind) {
      case BackendKind::kSim:
        return "sim";
      case BackendKind::kAnalytic:
        return "analytic";
      case BackendKind::kCache:
        return "cache";
    }
    return "?";
}

bool
parseBackendKind(const std::string &name, BackendKind &out)
{
    if (name == "sim")
        out = BackendKind::kSim;
    else if (name == "analytic")
        out = BackendKind::kAnalytic;
    else if (name == "cache")
        out = BackendKind::kCache;
    else
        return false;
    return true;
}

bool
resolveBackendKind(const std::string &arg, BackendKind &out,
                   std::string &err)
{
    const std::string &name = !arg.empty() ? arg : envConfig().backend;
    if (name.empty()) {
        out = BackendKind::kSim;
        return true;
    }
    if (!parseBackendKind(name, out)) {
        err = "unknown backend '" + name +
              "' (expected sim, analytic, or cache)";
        return false;
    }
    return true;
}

std::vector<RunResult>
ExperimentBackend::runMany(const std::vector<RunPoint> &pts, int jobs)
{
    (void)jobs; // points answered from a model need no fan-out
    std::vector<RunResult> out;
    out.reserve(pts.size());
    for (const RunPoint &pt : pts)
        out.push_back(run(pt));
    return out;
}

// --- sim -----------------------------------------------------------

std::string
SimBackend::canServe(const RunPoint &)
{
    return "";
}

RunResult
SimBackend::run(const RunPoint &pt)
{
    return runPointCached(pt);
}

std::vector<RunResult>
SimBackend::runMany(const std::vector<RunPoint> &pts, int jobs)
{
    return runPoints(pts, jobs);
}

// --- cache ---------------------------------------------------------

std::string
CacheBackend::canServe(const RunPoint &pt)
{
    if (!cache_)
        return "no result cache installed";
    RunResult tmp;
    if (!cache_->lookup(pt, tmp))
        return "spec not in cache";
    return "";
}

RunResult
CacheBackend::run(const RunPoint &pt)
{
    RunResult r;
    if (cache_)
        cache_->lookup(pt, r);
    return r;
}

// --- analytic ------------------------------------------------------

std::string
AnalyticBackend::canServe(const RunPoint &pt)
{
    const RunConfig &c = pt.config;
    const Knobs &k = c.knobs;
    if (c.trace || c.obs)
        return "trace sinks need a real simulation";
    if (k.dropRate >= 0 || k.dupRate >= 0 || k.corruptRate >= 0 ||
        k.reorderRate >= 0 || c.machine.params.fault.enabled)
        return "fault injection is stochastic per parameter point";
    if (k.reliable == 1 || c.machine.params.reliable)
        return "retransmission schedules do not re-time linearly";
    if (k.delayNode >= 0 || !c.machine.params.fault.delays.empty())
        return "one-off delay injection needs a real simulation";

    // A model already built but poisoned by probe drift refuses
    // loudly so the caller falls back to sim instead of trusting it.
    std::lock_guard<std::mutex> lock(mu_);
    auto it = models_.find(modelKeyOf(pt));
    if (it != models_.end()) {
        std::lock_guard<std::mutex> elock(it->second->mu);
        if (it->second->built && !it->second->healthy)
            return it->second->reason;
    }
    return "";
}

std::shared_ptr<AnalyticBackend::ModelEntry>
AnalyticBackend::entryOf(const RunPoint &pt)
{
    std::lock_guard<std::mutex> lock(mu_);
    std::shared_ptr<ModelEntry> &e = models_[modelKeyOf(pt)];
    if (!e)
        e = std::make_shared<ModelEntry>();
    return e;
}

void
AnalyticBackend::buildLocked(const RunPoint &pt, ModelEntry &e)
{
    e.built = true;
    e.healthy = false;

    // One traced run at the machine baseline for this model identity.
    RunPoint base = basePointOf(pt);
    SpanTracer tracer;
    base.config.obs = &tracer;
    e.baseParams = resolvedParams(base.config);
    e.baseResult = runApp(base.app, base.config);
    if (!e.baseResult.ok) {
        e.reason = "base traced run failed (budget exceeded?)";
        return;
    }
    if (!e.model.build(tracer, e.baseParams, e.baseResult.runtime)) {
        e.reason = "trace did not lower to a DAG";
        return;
    }

    if (!opts_.validateModels) {
        e.healthy = true;
        return;
    }

    // Probe validation: one sim run at a stretched latency; if the
    // model cannot re-time that, it cannot be trusted anywhere.
    RunPoint probe = basePointOf(pt);
    probe.config.obs = nullptr;
    const double base_l_us =
        static_cast<double>(e.baseParams.totalLatency()) / kUsec;
    probe.config.knobs.latencyUs = base_l_us * 4;
    RunResult sim = runPointCached(probe);
    if (!sim.ok) {
        e.reason = "validation probe run failed";
        return;
    }
    AnalyticPrediction pred =
        e.model.predict(resolvedParams(probe.config));
    if (!pred.ok) {
        e.reason = "model failed to evaluate the probe";
        return;
    }
    e.probeDrift =
        std::fabs(pred.runtime - static_cast<double>(sim.runtime)) /
        static_cast<double>(sim.runtime);
    if (e.probeDrift > opts_.driftTolerance) {
        char buf[96];
        std::snprintf(buf, sizeof buf,
                      "probe drift %.1f%% exceeds tolerance %.1f%%",
                      e.probeDrift * 100, opts_.driftTolerance * 100);
        e.reason = buf;
        return;
    }
    e.healthy = true;
}

bool
AnalyticBackend::ready(const RunPoint &pt)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = models_.find(modelKeyOf(pt));
    if (it == models_.end())
        return false;
    std::lock_guard<std::mutex> elock(it->second->mu);
    return it->second->built && it->second->healthy;
}

AnalyticPrediction
AnalyticBackend::predict(const RunPoint &pt)
{
    AnalyticPrediction none;
    if (!canServe(pt).empty())
        return none;
    std::shared_ptr<ModelEntry> e = entryOf(pt);
    std::lock_guard<std::mutex> lock(e->mu);
    if (!e->built)
        buildLocked(pt, *e);
    if (!e->healthy)
        return none;
    return e->model.predict(resolvedParams(pt.config));
}

ModelBuildStats
AnalyticBackend::modelStats(const RunPoint &pt)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = models_.find(modelKeyOf(pt));
    if (it == models_.end())
        return {};
    std::lock_guard<std::mutex> elock(it->second->mu);
    return it->second->model.stats();
}

RunResult
AnalyticBackend::run(const RunPoint &pt)
{
    RunResult fail;
    if (!canServe(pt).empty())
        return fail;
    std::shared_ptr<ModelEntry> e = entryOf(pt);
    std::lock_guard<std::mutex> lock(e->mu);
    if (!e->built)
        buildLocked(pt, *e);
    if (!e->healthy)
        return fail;
    AnalyticPrediction pred =
        e->model.predict(resolvedParams(pt.config));
    if (!pred.ok)
        return fail;

    // The result carries the traced run's measurements (the message
    // counts and matrix are knob-independent) under the re-timed
    // runtime; validated=false marks it model-derived, and the run
    // budget applies to the predicted time exactly as it would to a
    // simulated one (the paper's "N/A" entries).
    RunResult r = e->baseResult;
    r.runtime = static_cast<Tick>(std::llround(pred.runtime));
    r.ok = r.runtime <= pt.config.maxTime;
    r.validated = false;
    r.simEvents = 0;
    return r;
}

// --- factory -------------------------------------------------------

std::unique_ptr<ExperimentBackend>
makeBackend(BackendKind kind, BackendOptions opts)
{
    switch (kind) {
      case BackendKind::kSim:
        return std::make_unique<SimBackend>();
      case BackendKind::kAnalytic:
        return std::make_unique<AnalyticBackend>(opts);
      case BackendKind::kCache:
        return std::make_unique<CacheBackend>(runCache());
    }
    fatal("unreachable backend kind");
    return nullptr;
}

} // namespace nowcluster::backend
