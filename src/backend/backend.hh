/**
 * @file
 * ExperimentBackend: one API for answering experiment points, with the
 * engine that answers them selected at runtime.
 *
 * Every consumer of experiment results -- `nowlab sweep`, the bench
 * binaries, `nowlabd` -- asks the same question: "what does this
 * (app, machine, knobs) point measure?" Three engines can answer it:
 *
 *   sim       the discrete-event simulator (harness::runPoints):
 *             always correct, seconds per point.
 *   analytic  the LP lowered from one traced run (backend/model.hh):
 *             milliseconds per point with closed-form sensitivity
 *             slopes, valid for the swept LogGP knobs of a recorded
 *             (app, nprocs, topology); self-validates against a sim
 *             probe and refuses service when drift exceeds tolerance.
 *   cache     the content-addressed result store: instant when a
 *             byte-identical spec was already computed.
 *
 * Callers hold an ExperimentBackend pointer and never know which one
 * is behind it; canServe() lets layered dispatchers (nowlabd, sweep)
 * ask before committing and fall back -- the analytic backend says
 * *why* it cannot serve a point so the fallback is explainable.
 * Selection comes from `--backend sim|analytic|cache` with the
 * NOW_BACKEND environment variable as fallback.
 */

#ifndef NOWCLUSTER_BACKEND_BACKEND_HH_
#define NOWCLUSTER_BACKEND_BACKEND_HH_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "backend/model.hh"
#include "harness/runner.hh"

namespace nowcluster::backend {

enum class BackendKind
{
    kSim,
    kAnalytic,
    kCache,
};

/** "sim" / "analytic" / "cache". */
const char *backendKindName(BackendKind kind);

/** Parse a backend name; false (out untouched) on an unknown name. */
bool parseBackendKind(const std::string &name, BackendKind &out);

/**
 * Resolve a user-facing --backend value: an explicit name wins, then
 * NOW_BACKEND, then sim. False with a complaint in `err` if either
 * source names an unknown backend.
 */
bool resolveBackendKind(const std::string &arg, BackendKind &out,
                        std::string &err);

/** Knobs common to backend construction. */
struct BackendOptions
{
    /** Analytic: max |analytic - sim| / sim at the build-time probe
     *  before the model refuses service. */
    double driftTolerance = 0.10;
    /** Analytic: run the sim probe at build time at all. Off for unit
     *  tests that check lowering mechanics, on everywhere else. */
    bool validateModels = true;
};

/** The common interface. Implementations are thread-safe: nowlabd's
 *  worker pool calls run() concurrently. */
class ExperimentBackend
{
  public:
    virtual ~ExperimentBackend() = default;

    virtual BackendKind kind() const = 0;
    const char *name() const { return backendKindName(kind()); }

    /**
     * Can this backend answer `pt`? "" = yes; otherwise a
     * human-readable reason (the fallback explanation nowlabd logs).
     * May do work (the analytic backend probes its model table, the
     * cache backend probes the store) but never simulates.
     */
    virtual std::string canServe(const RunPoint &pt) = 0;

    /** Answer one point. A point the backend cannot serve returns
     *  ok=false (callers that care ask canServe first). */
    virtual RunResult run(const RunPoint &pt) = 0;

    /** Answer a batch in submission order. Default: run() in a loop
     *  (the sim backend fans out across the worker pool instead). */
    virtual std::vector<RunResult>
    runMany(const std::vector<RunPoint> &pts, int jobs);
};

/** The simulator behind the interface: runPointCached / runPoints,
 *  including the installed RunCache and --jobs fan-out. */
class SimBackend : public ExperimentBackend
{
  public:
    BackendKind kind() const override { return BackendKind::kSim; }
    std::string canServe(const RunPoint &pt) override;
    RunResult run(const RunPoint &pt) override;
    std::vector<RunResult> runMany(const std::vector<RunPoint> &pts,
                                   int jobs) override;
};

/** The result store behind the interface: hits are instant, misses are
 *  refusals (ok=false) -- this backend never computes. */
class CacheBackend : public ExperimentBackend
{
  public:
    /** @param cache The store hook to probe (not owned; nullptr means
     *               "no cache installed" and nothing is served). */
    explicit CacheBackend(RunCache *cache) : cache_(cache) {}

    BackendKind kind() const override { return BackendKind::kCache; }
    std::string canServe(const RunPoint &pt) override;
    RunResult run(const RunPoint &pt) override;

  private:
    RunCache *cache_;
};

/**
 * The analytic LP backend. One traced base run per (app, nprocs,
 * scale, seed, machine, non-swept knobs) is recorded on first demand,
 * lowered into the LP, probe-validated against the simulator, and then
 * answers every (L, o, g, G) point against that model in microseconds.
 */
class AnalyticBackend : public ExperimentBackend
{
  public:
    explicit AnalyticBackend(BackendOptions opts = {}) : opts_(opts) {}

    BackendKind kind() const override { return BackendKind::kAnalytic; }

    /**
     * Static incompatibilities (fault injection, reliability protocol,
     * attached trace sinks) and models already built but poisoned by
     * probe drift both produce a reason here. A point whose model
     * simply is not built yet answers "" -- run() will build it.
     */
    std::string canServe(const RunPoint &pt) override;

    /** Serve `pt`: predicted runtime over the base run's measurements
     *  (validated=false marks the result model-derived). Builds the
     *  model on first use -- one traced sim run plus one probe run --
     *  then every further point is an LP solve. */
    RunResult run(const RunPoint &pt) override;

    /** True iff the point's model is built and healthy: run() would
     *  answer without simulating. */
    bool ready(const RunPoint &pt);

    /** Full prediction (runtime + dT/dL, dT/do, dT/dg, dT/dG slopes)
     *  for sweep tables and validation; builds like run(). */
    AnalyticPrediction predict(const RunPoint &pt);

    /** Lowering statistics of the point's model (ok=false prediction
     *  if absent). */
    ModelBuildStats modelStats(const RunPoint &pt);

  private:
    struct ModelEntry
    {
        std::mutex mu;
        bool built = false;
        bool healthy = false;
        std::string reason; ///< Why unhealthy.
        AnalyticModel model;
        LogGPParams baseParams;
        RunResult baseResult;
        double probeDrift = 0;
    };

    std::shared_ptr<ModelEntry> entryOf(const RunPoint &pt);
    void buildLocked(const RunPoint &pt, ModelEntry &e);

    BackendOptions opts_;
    std::mutex mu_;
    std::unordered_map<std::string, std::shared_ptr<ModelEntry>>
        models_;
};

/** Construct a backend of the given kind. The cache backend wraps the
 *  process-global RunCache hook (runner.hh). */
std::unique_ptr<ExperimentBackend> makeBackend(BackendKind kind,
                                               BackendOptions opts = {});

} // namespace nowcluster::backend

#endif // NOWCLUSTER_BACKEND_BACKEND_HH_
