/**
 * @file
 * Lowering a span trace into the LogGP sweep LP.
 */

#include "backend/model.hh"

#include <algorithm>
#include <unordered_map>
#include <vector>

namespace nowcluster::backend {

LpParams
AnalyticModel::pointOf(const LogGPParams &p)
{
    LpParams lp;
    lp.L = static_cast<double>(p.totalLatency());
    lp.o = static_cast<double>(p.addedO);
    lp.g = static_cast<double>(p.gap);
    lp.Gb = p.gPerByte;
    return lp;
}

LinCost
AnalyticModel::spanCost(const Span &s) const
{
    LinCost c;
    const double dur = static_cast<double>(s.end - s.begin);
    switch (s.cat) {
      case SpanCat::OSend:
      case SpanCat::ORecv:
        // Each overhead phase contains exactly one addedO; the rest
        // (the hardware oSend/oRecv) is fixed.
        c.fixed = dur - static_cast<double>(base_.addedO);
        c.perO = 1;
        break;
      case SpanCat::GapStall:
        // Back-pressure stalls scale with the injection gap.
        if (base_.gap > 0)
            c.perG = dur / static_cast<double>(base_.gap);
        else
            c.fixed = dur;
        break;
      case SpanCat::GStall:
        // Bulk DMA time scales with G.
        if (base_.gPerByte > 0)
            c.perGb = dur / base_.gPerByte;
        else
            c.fixed = dur;
        break;
      default:
        c.fixed = dur;
        break;
    }
    return c;
}

bool
AnalyticModel::build(const SpanTracer &tracer, const LogGPParams &base,
                     Tick measuredRuntime)
{
    ok_ = false;
    base_ = base;
    residual_ = 0;
    stats_ = {};
    dag_ = LpDag();

    // Collect the leaf CPU spans, grouped per node in timeline order.
    const std::vector<Span> &spans = tracer.spans();
    std::unordered_map<NodeId, std::vector<std::size_t>> timeline;
    for (std::size_t i = 0; i < spans.size(); i++) {
        const Span &s = spans[i];
        if (s.container || s.track != TrackKind::Cpu)
            continue;
        if (s.end <= s.begin)
            continue; // instant Retransmit markers
        timeline[s.node].push_back(i);
    }
    if (timeline.empty())
        return false;
    for (auto &[node, idxs] : timeline) {
        std::sort(idxs.begin(), idxs.end(),
                  [&](std::size_t a, std::size_t b) {
                      if (spans[a].begin != spans[b].begin)
                          return spans[a].begin < spans[b].begin;
                      return spans[a].end < spans[b].end;
                  });
        stats_.cpuSpans += idxs.size();
    }

    // Message spans: the first OSend / ORecv leaf tagged with each id,
    // plus each span's predecessor-end on its own timeline -- the
    // critpath analyzer's test for whether an arrival was *binding*
    // (the CPU was waiting on the wire) or the message merely sat in
    // the receive queue while the CPU did other work.
    std::unordered_map<std::uint64_t, std::size_t> sendSpan, recvSpan;
    std::unordered_map<std::size_t, Tick> prevEnd;
    for (auto &[node, idxs] : timeline) {
        for (std::size_t k = 0; k < idxs.size(); k++) {
            const std::size_t i = idxs[k];
            const Span &s = spans[i];
            prevEnd[i] = k > 0 ? spans[idxs[k - 1]].end : 0;
            if (s.msg == 0)
                continue;
            if (s.cat == SpanCat::OSend)
                sendSpan.emplace(s.msg, i);
            else if (s.cat == SpanCat::ORecv) {
                auto [it, fresh] = recvSpan.emplace(s.msg, i);
                if (!fresh && s.begin < spans[it->second].begin)
                    it->second = i;
            }
        }
    }

    const std::vector<ObsMessage> &msgs = tracer.messages();

    // Only spans that cross-node edges attach to need their own LP
    // event: send overheads (they gate an injection), *binding*
    // receive overheads (an arrival gates them), and the fallback
    // anchors of untraced protocol sends. Everything between two such
    // spans is private to its CPU, so the whole run coalesces into one
    // accumulated chain edge -- the solve cost per sweep point drops
    // with the graph, and the LP's feasible region is unchanged.
    std::vector<char> needNode(spans.size(), 0);
    std::vector<std::ptrdiff_t> anchorOf(msgs.size(), -1);
    std::vector<char> bindingOf(msgs.size(), 0);
    for (std::size_t mi = 0; mi < msgs.size(); mi++) {
        const ObsMessage &m = msgs[mi];
        auto su = sendSpan.find(m.id);
        if (su != sendSpan.end()) {
            needNode[su->second] = 1;
        } else {
            auto tl = timeline.find(m.src);
            if (tl != timeline.end()) {
                const std::vector<std::size_t> &idxs = tl->second;
                for (std::size_t k = idxs.size(); k-- > 0;) {
                    if (spans[idxs[k]].end <= m.issued) {
                        anchorOf[mi] =
                            static_cast<std::ptrdiff_t>(idxs[k]);
                        needNode[idxs[k]] = 1;
                        break;
                    }
                }
            }
        }
        auto rv = recvSpan.find(m.id);
        if (rv != recvSpan.end() && m.ready >= prevEnd[rv->second]) {
            bindingOf[mi] = 1;
            needNode[rv->second] = 1;
        }
    }

    // Program order, coalesced: chain the kept spans per node, folding
    // the cost of everything in between (compute, buffered handlers,
    // stalls -- they occupy the CPU regardless of handler order) into
    // the connecting edge.
    std::vector<int> lpOf(spans.size(), -1);
    const int sink = dag_.addNode();
    for (auto &[node, idxs] : timeline) {
        int prev = LpDag::kSource;
        LinCost acc;
        for (std::size_t i : idxs) {
            if (needNode[i]) {
                lpOf[i] = dag_.addNode();
                if (prev != LpDag::kSource || acc.fixed > 0 ||
                    acc.perO > 0 || acc.perG > 0 || acc.perGb > 0)
                    dag_.addEdge(prev, lpOf[i], acc);
                prev = lpOf[i];
                acc = spanCost(spans[i]);
            } else {
                acc += spanCost(spans[i]);
            }
        }
        dag_.addEdge(prev, sink, acc);
    }

    // The NIC transmit pipeline: one LP event per message injection,
    // chained per sender in inject order. The chain edge *is* LogGP's
    // g -- the tx context is occupied for one gap per short message
    // (plus size*G while a bulk fragment drains) -- so a gap sweep
    // re-times the model even though the base trace, recorded below
    // the saturation point, shows almost no host back-pressure. The
    // simulator enforces exactly this constraint, so at the base
    // operating point the chain is satisfied by the recorded
    // timestamps and never distorts the calibrated makespan.
    std::vector<int> injNode(msgs.size(), -1);
    std::unordered_map<NodeId, std::vector<std::size_t>> bySrc;
    for (std::size_t i = 0; i < msgs.size(); i++)
        bySrc[msgs[i].src].push_back(i);
    for (auto &[src, order] : bySrc) {
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      if (msgs[a].inject != msgs[b].inject)
                          return msgs[a].inject < msgs[b].inject;
                      return msgs[a].id < msgs[b].id;
                  });
        for (std::size_t k = 0; k < order.size(); k++) {
            injNode[order[k]] = dag_.addNode();
            if (k == 0)
                continue;
            const ObsMessage &prev = msgs[order[k - 1]];
            LinCost occ;
            occ.perG = 1;
            if (base_.gPerByte > 0)
                occ.perGb =
                    static_cast<double>(prev.wire - prev.inject) /
                    base_.gPerByte;
            dag_.addEdge(injNode[order[k - 1]], injNode[order[k]],
                         occ);
        }
    }

    // Cross-node edges: host issue -> injection -> arrival.
    std::vector<LinCost> sinkCost(msgs.size());
    std::vector<char> sinkBound(msgs.size(), 0);
    for (std::size_t mi = 0; mi < msgs.size(); mi++) {
        const ObsMessage &m = msgs[mi];

        // The host side: the injection cannot happen before the send
        // overhead that issued the descriptor completes. Untraced
        // protocol messages anchor on the sender's last span ending by
        // `issued`, or virtual time zero.
        auto su = sendSpan.find(m.id);
        if (su != sendSpan.end()) {
            dag_.addEdge(lpOf[su->second], injNode[mi],
                         spanCost(spans[su->second]));
        } else if (anchorOf[mi] >= 0) {
            const Span &a = spans[static_cast<std::size_t>(
                anchorOf[mi])];
            LinCost c = spanCost(a);
            c.fixed += static_cast<double>(m.issued - a.end);
            dag_.addEdge(lpOf[static_cast<std::size_t>(anchorOf[mi])],
                         injNode[mi], c);
        } else {
            LinCost c;
            c.fixed = static_cast<double>(m.issued);
            dag_.addEdge(LpDag::kSource, injNode[mi], c);
        }

        // The wire: bulk serialization (scales with G) and one wire
        // crossing (perL = 1, with any extra contention delay beyond
        // L kept as fixed time).
        LinCost flight;
        const double serial = static_cast<double>(m.wire - m.inject);
        if (base_.gPerByte > 0)
            flight.perGb = serial / base_.gPerByte;
        else
            flight.fixed += serial;
        flight.perL = 1;
        flight.fixed += static_cast<double>(m.ready - m.wire) -
                        static_cast<double>(base_.totalLatency());

        auto rv = recvSpan.find(m.id);
        if (rv == recvSpan.end()) {
            // Bulk intermediate fragments bypass the receive queue by
            // design; only the closing fragment is handled. They still
            // occupy the tx chain above, and the transfer must finish
            // before the run can.
            sinkCost[mi] = flight;
            sinkBound[mi] = 1;
            stats_.messagesUnlinked++;
            continue;
        }

        // Where the arrival constrains the schedule depends on whether
        // the receiver was actually waiting for it. A *binding* recv
        // (presence bit set at or after the previous local span ended
        // -- a read reply, a barrier notification) gates the receive
        // overhead span itself: everything after it on that CPU slides
        // with the wire. A *buffered* recv (the message sat in the rx
        // queue while the CPU worked) imposes no mid-schedule order --
        // the simulator is free to reorder handler execution against
        // independent work -- but the data still has to arrive and be
        // handled before the run can complete, so it constrains the
        // completion join instead. This split is what makes write-
        // based apps latency-tolerant in the model exactly as they are
        // in the paper: their arrival edges only matter once L grows
        // past the compute they overlap with.
        if (bindingOf[mi]) {
            dag_.addEdge(injNode[mi], lpOf[rv->second], flight);
        } else {
            LinCost c = flight;
            // Handler still runs post-arrival.
            c += spanCost(spans[rv->second]);
            sinkCost[mi] = c;
            sinkBound[mi] = 1;
        }
        stats_.messagesLinked++;
    }

    // Completion joins, pruned by domination. Per sender the tx chain
    // is monotone, so a buffered arrival whose sink cost is, in every
    // coefficient, no more than [chain to the next kept arrival] +
    // [its sink cost] can never be the longest path at any operating
    // point (coefficients and parameters are nonnegative, and clamping
    // only raises the surviving path). One join per "frontier" arrival
    // survives instead of one per message.
    auto dominated = [](const LinCost &a, const LinCost &b) {
        return a.fixed <= b.fixed && a.perL <= b.perL &&
               a.perO <= b.perO && a.perG <= b.perG &&
               a.perGb <= b.perGb;
    };
    for (auto &[src, order] : bySrc) {
        LinCost toKept;
        bool haveKept = false;
        for (std::size_t k = order.size(); k-- > 0;) {
            const std::size_t mi = order[k];
            if (sinkBound[mi]) {
                if (haveKept && dominated(sinkCost[mi], toKept)) {
                    // Dropped: the chain successor's join covers it.
                } else {
                    dag_.addEdge(injNode[mi], sink, sinkCost[mi]);
                    toKept = sinkCost[mi];
                    haveKept = true;
                }
            }
            if (k > 0 && haveKept) {
                const ObsMessage &prev = msgs[order[k - 1]];
                toKept.perG += 1;
                if (base_.gPerByte > 0)
                    toKept.perGb +=
                        static_cast<double>(prev.wire - prev.inject) /
                        base_.gPerByte;
            }
        }
    }

    stats_.lpNodes = dag_.nodeCount();
    stats_.lpEdges = dag_.edgeCount();
    if (!dag_.prepare())
        return false;

    // Calibrate: the LP explains the dependency structure; whatever is
    // left (untraced waits) is constant slack charged at every point.
    LpSolution atBase = dag_.solve(pointOf(base_));
    if (!atBase.ok)
        return false;
    residual_ = static_cast<double>(measuredRuntime) - atBase.makespan;
    stats_.residual = residual_;
    ok_ = true;
    return true;
}

AnalyticPrediction
AnalyticModel::predict(const LogGPParams &target) const
{
    AnalyticPrediction p;
    if (!ok_)
        return p;
    LpSolution sol = dag_.solve(pointOf(target));
    if (!sol.ok)
        return p;
    p.ok = true;
    p.runtime = sol.makespan + residual_;
    if (p.runtime < 0)
        p.runtime = 0;
    p.dTdL = sol.gradient.perL;
    p.dTdO = sol.gradient.perO;
    p.dTdG = sol.gradient.perG;
    p.dTdGb = sol.gradient.perGb;
    return p;
}

} // namespace nowcluster::backend
