/**
 * @file
 * AnalyticModel: lower one traced run into the sweep-evaluation LP.
 *
 * The span tracer records two things the model needs: the per-node CPU
 * timelines (what each processor did, in order) and one ObsMessage per
 * message with the NIC timestamp algebra
 *
 *   issued --(queue wait: g)--> inject --(size*G)--> wire --(L)--> ready
 *
 * Lowering turns each leaf CPU span into an LP event whose outgoing
 * edge weight is a linear function of the LogGP parameters (an OSend
 * span costs `duration - base.addedO + 1*o`, a GapStall span costs
 * `duration/base.gap * g`, compute is constant), and each message into
 * a cross-node edge from its send-overhead span to its receive-overhead
 * span weighted by the parameterized queue wait, bulk serialization,
 * and one wire crossing (`perL = 1`). Solving the LP at the traced
 * operating point reproduces the traced schedule; solving it anywhere
 * else predicts how the schedule re-times when the knobs move, exactly
 * the question every sweep in the paper asks.
 *
 * The prediction is calibrated: whatever part of the measured runtime
 * the graph cannot explain (untraced credit waits, polling slack) is
 * captured as a constant residual at build time, so the model is exact
 * at its own base point and the error budget is spent only on the
 * *change* in runtime.
 */

#ifndef NOWCLUSTER_BACKEND_MODEL_HH_
#define NOWCLUSTER_BACKEND_MODEL_HH_

#include <cstddef>

#include "backend/lp.hh"
#include "net/loggp.hh"
#include "obs/tracer.hh"

namespace nowcluster::backend {

/** One evaluated sweep point: predicted runtime plus the closed-form
 *  sensitivity slopes from the LP dual (critical-path crossings). */
struct AnalyticPrediction
{
    bool ok = false;
    double runtime = 0; ///< Predicted end-to-end ticks.
    double dTdL = 0;    ///< Ticks of runtime per tick of L.
    double dTdO = 0;    ///< Ticks of runtime per tick of added o.
    double dTdG = 0;    ///< Ticks of runtime per tick of g.
    double dTdGb = 0;   ///< Ticks of runtime per ns/byte of G.
};

/** How the lowering went (surfaced by `nowlab backend validate`). */
struct ModelBuildStats
{
    std::size_t cpuSpans = 0;        ///< Leaf CPU spans lowered.
    std::size_t messagesLinked = 0;  ///< Messages with a receive edge.
    std::size_t messagesUnlinked = 0; ///< No ORecv span (bulk frags).
    std::size_t lpNodes = 0;
    std::size_t lpEdges = 0;
    double residual = 0; ///< measured - raw LP makespan, in ticks.
};

/**
 * The lowered model for one traced (app, nprocs, topology) run.
 * build() once, predict() from any thread (solve is const).
 */
class AnalyticModel
{
  public:
    /**
     * Lower `tracer` recorded under `base` parameters into the LP and
     * calibrate against the run's measured runtime.
     * @return false if the trace has no CPU spans or the dependency
     *         graph is not a DAG (corrupt trace).
     */
    bool build(const SpanTracer &tracer, const LogGPParams &base,
               Tick measuredRuntime);

    /** Evaluate the model at a target operating point. */
    AnalyticPrediction predict(const LogGPParams &target) const;

    bool ready() const { return ok_; }
    const ModelBuildStats &stats() const { return stats_; }

    /** The LP coordinates of a parameter set: (totalLatency, addedO,
     *  gap, gPerByte). */
    static LpParams pointOf(const LogGPParams &p);

  private:
    LinCost spanCost(const Span &s) const;

    LpDag dag_;
    LogGPParams base_;
    double residual_ = 0;
    ModelBuildStats stats_;
    bool ok_ = false;
};

} // namespace nowcluster::backend

#endif // NOWCLUSTER_BACKEND_MODEL_HH_
