#include "net/nic.hh"

#include <algorithm>

#include "base/logging.hh"

namespace nowcluster {

NicTx::Accept
NicTx::accept(Tick h, Tick occupancy, Tick transfer, std::uint64_t msg)
{
    // Free slots whose descriptors have already entered the tx context.
    while (!slotRelease_.empty() && slotRelease_.front() <= h)
        slotRelease_.pop_front();

    // If the FIFO is full, the host spins until a slot opens. Releases
    // are monotonically increasing, so the wait target is the entry that
    // leaves exactly depth-1 descriptors queued.
    const std::size_t depth =
        static_cast<std::size_t>(params_->txQueueDepth);
    if (slotRelease_.size() >= depth) {
        h = slotRelease_[slotRelease_.size() - depth];
        while (!slotRelease_.empty() && slotRelease_.front() <= h)
            slotRelease_.pop_front();
    }

    Accept a;
    a.hostFreeAt = h;
    a.injectStart = std::max(h, busyUntil_);
    a.wireAt = a.injectStart + transfer;
    busyUntil_ = a.injectStart + occupancy;
    // A descriptor occupies its FIFO slot until fully processed.
    slotRelease_.push_back(busyUntil_);
    if (obs_) {
        // DMA transfer (size*G), then the injection-loop stall (g).
        obs_->span(node_, TrackKind::NicTx, SpanCat::GStall,
                   a.injectStart, a.wireAt, msg);
        obs_->span(node_, TrackKind::NicTx, SpanCat::GapStall, a.wireAt,
                   busyUntil_, msg);
    }
    return a;
}

} // namespace nowcluster
