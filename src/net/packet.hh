/**
 * @file
 * The unit of transfer between simulated nodes.
 */

#ifndef NOWCLUSTER_NET_PACKET_HH_
#define NOWCLUSTER_NET_PACKET_HH_

#include <cstdint>
#include <vector>

#include "base/types.hh"

namespace nowcluster {

/** Message classes; they differ in flow control and accounting. */
enum class PacketKind : std::uint8_t
{
    Request,   ///< Short AM expecting a reply; consumes a credit.
    Reply,     ///< Short AM reply; returns the request's credit.
    OneWay,    ///< Short AM with no reply; credit returned by NIC ack.
    BulkFrag,  ///< Bulk fragment; credit returned by NIC ack.
};

/** An Active Message in flight. */
struct Packet
{
    NodeId src = -1;
    NodeId dst = -1;
    PacketKind kind = PacketKind::OneWay;
    /** Handler table index to invoke at the receiver. */
    int handler = -1;
    /** Short payload words. */
    Word args[6] = {0, 0, 0, 0, 0, 0};

    /** Bulk fragment payload (empty for short messages). */
    std::vector<std::uint8_t> bulk;
    /** Destination virtual address for the bulk DMA at the receiver. */
    void *bulkDst = nullptr;
    /** Identifier of the enclosing bulk operation. */
    std::uint64_t bulkOp = 0;
    /** True on the final fragment of a bulk operation (fires handler). */
    bool bulkLast = false;
    /** Total bytes of the enclosing bulk operation. */
    std::size_t bulkTotal = 0;
    /** Reply-class bulk (serving a get): consumes no send credits and
     *  triggers no automatic StoreAck. */
    bool creditFree = false;
    /** This packet answers a Request and must return its flow-control
     *  credit on arrival (not set for StoreAck replies to bulk/one-way
     *  messages, whose credits come back via NIC-level acks). */
    bool creditReply = false;

    /** Virtual time the presence bit is set at the receiver. */
    Tick readyAt = 0;

    /** Reliability protocol sequence number, per (src, dst) pair,
     *  starting at 1. 0 when the reliable layer is disabled. */
    std::uint64_t seq = 0;
    /** True on retransmitted copies (diagnostics/tracing only). */
    bool retx = false;

    /** Observability message id (0 unless a span tracer is attached). */
    std::uint64_t obsMsg = 0;

    /** Cross-leaf packet still owing its destination-leaf downlink
     *  queueing (fat-tree topology model; cleared once applied). */
    bool spineHop = false;

    bool isBulk() const { return kind == PacketKind::BulkFrag; }
};

} // namespace nowcluster

#endif // NOWCLUSTER_NET_PACKET_HH_
