#include "net/topology.hh"

#include <algorithm>
#include <numeric>

#include "base/logging.hh"

namespace nowcluster {

FatTreeTopology::FatTreeTopology(int nprocs, const Config &config)
    : config_(config)
{
    fatal_if(config.hostsPerLeaf < 1, "need at least one host per leaf");
    fatal_if(config.linkMBps <= 0, "link bandwidth must be positive");
    fatal_if(config.oversub <= 0, "oversubscription ratio must be positive");
    fatal_if(config.hopLatency < 0, "hop latency must be non-negative");
    nLeaves_ = (nprocs + config.hostsPerLeaf - 1) / config.hostsPerLeaf;
    upBusy_.assign(nLeaves_, 0);
    downBusy_.assign(nLeaves_, 0);
    upQueued_.assign(nLeaves_, 0);
    downQueued_.assign(nLeaves_, 0);
}

Tick
FatTreeTopology::serializationTime(std::size_t bytes) const
{
    bytes = std::max(bytes, config_.minPacketBytes);
    // Oversubscription divides the spine-facing capacity, which
    // multiplies the time each packet holds the link.
    double ns_per_byte =
        1e9 / (config_.linkMBps * 1e6) * config_.oversub;
    return static_cast<Tick>(static_cast<double>(bytes) * ns_per_byte +
                             0.5);
}

Tick
FatTreeTopology::uplink(int leaf, std::size_t bytes, Tick inject)
{
    Tick ser = serializationTime(bytes);
    Tick start = std::max(inject, upBusy_[leaf]);
    upBusy_[leaf] = start + ser;
    Tick queueing = start - inject;
    upQueued_[leaf] += queueing;
    return queueing;
}

Tick
FatTreeTopology::downlink(int leaf, std::size_t bytes, Tick arrive)
{
    Tick ser = serializationTime(bytes);
    Tick start = std::max(arrive, downBusy_[leaf]);
    downBusy_[leaf] = start + ser;
    Tick queueing = start - arrive;
    downQueued_[leaf] += queueing;
    return queueing;
}

Tick
FatTreeTopology::totalUplinkQueueing() const
{
    return std::accumulate(upQueued_.begin(), upQueued_.end(), Tick{0});
}

Tick
FatTreeTopology::totalDownlinkQueueing() const
{
    return std::accumulate(downQueued_.begin(), downQueued_.end(), Tick{0});
}

} // namespace nowcluster
