#include "net/loggp.hh"

#include "base/logging.hh"

namespace nowcluster {

void
LogGPParams::setDesiredOverheadUsec(double o_us)
{
    Tick desired = usec(o_us);
    Tick base = (oSend + oRecv) / 2;
    fatal_if(desired < base,
             "desired overhead %.1f us below hardware baseline %.1f us",
             o_us, toUsec(base));
    addedO = desired - base;
}

void
LogGPParams::setDesiredGapUsec(double g_us)
{
    Tick desired = usec(g_us);
    fatal_if(desired < gap && desired < usec(0.1),
             "desired gap %.1f us is not positive", g_us);
    // The gap knob programs the injection delay loop directly.
    gap = desired;
}

void
LogGPParams::setDesiredLatencyUsec(double l_us)
{
    Tick desired = usec(l_us);
    fatal_if(desired < latency,
             "desired latency %.1f us below hardware baseline %.1f us",
             l_us, toUsec(latency));
    addedL = desired - latency;
}

void
LogGPParams::setOccupancyUsec(double o_us)
{
    fatal_if(o_us < 0, "occupancy cannot be negative");
    occupancy = usec(o_us);
}

MachineConfig
MachineConfig::berkeleyNow()
{
    MachineConfig m;
    m.name = "Berkeley NOW";
    m.params.oSend = usec(1.8);
    m.params.oRecv = usec(4.0);
    m.params.gap = usec(5.8);
    m.params.latency = usec(5.0);
    m.params.setBulkMBps(38.0);
    return m;
}

MachineConfig
MachineConfig::intelParagon()
{
    MachineConfig m;
    m.name = "Intel Paragon";
    m.params.oSend = usec(1.4);
    m.params.oRecv = usec(2.2);
    m.params.gap = usec(7.6);
    m.params.latency = usec(6.5);
    m.params.setBulkMBps(141.0);
    return m;
}

MachineConfig
MachineConfig::meikoCs2()
{
    MachineConfig m;
    m.name = "Meiko CS-2";
    m.params.oSend = usec(1.3);
    m.params.oRecv = usec(2.1);
    m.params.gap = usec(13.6);
    m.params.latency = usec(7.5);
    m.params.setBulkMBps(47.0);
    return m;
}

} // namespace nowcluster
