/**
 * @file
 * A two-level fat-tree topology model for large (1024-node) clusters.
 *
 * Hosts attach to leaf switches (`hostsPerLeaf` each); leaves connect
 * to a spine through uplinks whose effective bandwidth is the edge
 * link rate divided by the oversubscription ratio. Same-leaf traffic
 * crosses only the leaf crossbar and sees no shared link. Cross-leaf
 * traffic pays, in order:
 *
 *   - `hopLatency` extra wire latency (the additional switch hops),
 *   - queueing on the source leaf's uplink (modelled at send time, so
 *     the state is owned by the sender's shard), and
 *   - queueing on the destination leaf's downlink (modelled when the
 *     packet reaches the leaf, so the state is owned by the receiving
 *     shard).
 *
 * Like SwitchFabric, only *queueing* is extra: the uncontended
 * traversal cost is already inside the baseline LogGP latency L, so an
 * idle fat-tree with hopLatency 0 is exactly the constant-latency
 * network. That split of link ownership between sender and receiver
 * shards is what lets the sharded engine run the model without locks.
 */

#ifndef NOWCLUSTER_NET_TOPOLOGY_HH_
#define NOWCLUSTER_NET_TOPOLOGY_HH_

#include <cstddef>
#include <vector>

#include "base/types.hh"

namespace nowcluster {

class FatTreeTopology
{
  public:
    struct Config
    {
        int hostsPerLeaf = 32;
        /** Edge link bandwidth (leaf <-> host, and leaf <-> spine
         *  before oversubscription). */
        double linkMBps = 160.0;
        /** Oversubscription ratio: uplink capacity = linkMBps /
         *  oversub. 1.0 = fully provisioned. */
        double oversub = 1.0;
        /** Extra wire latency per cross-leaf packet (spine hops). */
        Tick hopLatency = 0;
        /** Short messages still occupy a minimum wire slot. */
        std::size_t minPacketBytes = 28;
    };

    FatTreeTopology(int nprocs, const Config &config);

    int leafOf(NodeId node) const { return node / config_.hostsPerLeaf; }
    int nLeaves() const { return nLeaves_; }
    Tick hopLatency() const { return config_.hopLatency; }
    bool sameLeaf(NodeId a, NodeId b) const { return leafOf(a) == leafOf(b); }

    /** Serialization time on an oversubscribed spine-facing link. */
    Tick serializationTime(std::size_t bytes) const;

    /**
     * Claim the source leaf's uplink for a packet offered at `inject`.
     * @return the queueing delay (0 when the link is idle).
     */
    Tick uplink(int leaf, std::size_t bytes, Tick inject);

    /**
     * Claim the destination leaf's downlink for a packet reaching the
     * leaf at `arrive`. @return the queueing delay.
     */
    Tick downlink(int leaf, std::size_t bytes, Tick arrive);

    /** Aggregate and per-leaf queueing, for stats and tests. */
    Tick totalUplinkQueueing() const;
    Tick totalDownlinkQueueing() const;
    Tick uplinkQueueing(int leaf) const { return upQueued_[leaf]; }
    Tick downlinkQueueing(int leaf) const { return downQueued_[leaf]; }

  private:
    Config config_;
    int nLeaves_;
    std::vector<Tick> upBusy_;
    std::vector<Tick> downBusy_;
    std::vector<Tick> upQueued_;
    std::vector<Tick> downQueued_;
};

} // namespace nowcluster

#endif // NOWCLUSTER_NET_TOPOLOGY_HH_
