/**
 * @file
 * An optional switch-fabric contention model.
 *
 * The paper's cluster was ten 8-port Myrinet switches (160 MB/s per
 * port), and the study treats the network as contention-free constant
 * latency -- implicitly claiming switch contention is negligible at
 * the offered loads. This model lets the laboratory *test* that
 * assumption: hosts hang off leaf switches; cross-switch packets
 * serialize over the source switch's uplink and the destination
 * switch's downlink. The model only ever *adds* delay relative to the
 * constant-latency baseline, so enabling it with uncontended traffic
 * changes nothing and calibration stays intact.
 */

#ifndef NOWCLUSTER_NET_FABRIC_HH_
#define NOWCLUSTER_NET_FABRIC_HH_

#include <cstddef>
#include <vector>

#include "base/types.hh"

namespace nowcluster {

/** Two-level switch fabric: leaf switches joined by a central stage. */
class SwitchFabric
{
  public:
    struct Config
    {
        /** Hosts attached to each leaf switch (paper: 8-port M2F
         *  switches with some ports used as uplinks). */
        int hostsPerSwitch = 4;
        /** Per-port link bandwidth (paper: 160 MB/s). */
        double linkMBps = 160.0;
        /** Minimum wire size of a short message, for serialization. */
        std::size_t minPacketBytes = 28;
    };

    SwitchFabric(int nprocs, const Config &config);

    /** Which leaf switch a host hangs off. */
    int switchOf(NodeId host) const
    {
        return host / config_.hostsPerSwitch;
    }

    /**
     * Account a packet of `bytes` from src to dst injected at time t.
     * @return the *additional* delay (>= 0) relative to the
     *         contention-free constant-latency path; mutates the link
     *         busy state.
     */
    Tick contentionDelay(NodeId src, NodeId dst, std::size_t bytes,
                         Tick inject);

    /** Total ticks of queueing observed so far (diagnostic). */
    Tick totalQueueing() const { return totalQueueing_; }

  private:
    Tick serializationTime(std::size_t bytes) const;

    Config config_;
    int nSwitches_;
    std::vector<Tick> uplinkBusy_;   ///< Leaf -> spine, per switch.
    std::vector<Tick> downlinkBusy_; ///< Spine -> leaf, per switch.
    Tick totalQueueing_ = 0;
};

} // namespace nowcluster

#endif // NOWCLUSTER_NET_FABRIC_HH_
