/**
 * @file
 * Deterministic fault injection for the cluster fabric.
 *
 * A FaultModel sits between packet injection and delivery: every wire
 * event (data packet or NIC-level ack) is offered to the model, which
 * decides — from a seeded private PRNG plus an explicit script — whether
 * the event is delivered, dropped, duplicated, delayed (reordering), or
 * corrupted (modeled as a CRC-detected discard at the receiving NIC,
 * counted separately from drops).
 *
 * Determinism: the model owns one xoshiro stream seeded from the fault
 * seed, and the simulator consults it in deterministic event order, so a
 * given (program, params, fault config) triple always produces the same
 * fault pattern. The scripted mode (drop exactly the Nth packet of a
 * class on a link, or blackhole a link for a tick window) exists for
 * regression tests that need one specific loss, not a statistical one.
 */

#ifndef NOWCLUSTER_NET_FAULT_HH_
#define NOWCLUSTER_NET_FAULT_HH_

#include <cstdint>
#include <map>
#include <tuple>
#include <vector>

#include "base/random.hh"
#include "base/types.hh"

namespace nowcluster {

/** Wire-event classes the fault model distinguishes. */
enum class PacketClass : std::uint8_t
{
    Data, ///< An Active Message packet (short or bulk fragment).
    Ack,  ///< A NIC-level ack (credit return or reliability ack).
};

/**
 * One scripted one-off delay: processor `node` is preempted (stalled)
 * from virtual time `at` for `duration` ticks. The stall models
 * OS-jitter style CPU interference -- the NIC contexts keep moving, but
 * the fiber neither computes nor reacts to wakes inside the window.
 * Deterministic by construction (no randomness involved), so the same
 * (app, seed, delay spec) triple always produces the same run.
 */
struct DelaySpec
{
    NodeId node = 0;
    Tick at = 0;
    Tick duration = 0;
};

/**
 * Probabilistic fault configuration. All rates are independent per-event
 * probabilities in [0, 1]; the default (all zero) is the perfect fabric.
 * Lives inside LogGPParams so every existing construction path (tests,
 * harness, nowlab) can carry it without new plumbing.
 */
struct FaultConfig
{
    /** Master switch: the cluster builds a FaultModel only when set.
     *  Scripted-only tests enable this with all rates left at zero. */
    bool enabled = false;
    double dropRate = 0;    ///< P(event silently lost).
    double dupRate = 0;     ///< P(event delivered twice).
    double corruptRate = 0; ///< P(payload corrupted -> CRC discard).
    /** P(event gets a uniform extra delay in (0, reorderMaxDelay]). */
    double reorderRate = 0;
    Tick reorderMaxDelay = usec(50);
    /** Seed of the fault model's private PRNG stream. */
    std::uint64_t seed = 1;
    /** Scripted one-off processor stalls (Afzal-style transient
     *  perturbations), applied by the Cluster at run() start. */
    std::vector<DelaySpec> delays;

    /** True if any probabilistic fault can occur. */
    bool
    anyRate() const
    {
        return dropRate > 0 || dupRate > 0 || corruptRate > 0 ||
               reorderRate > 0;
    }
};

/** What the model decided for one offered wire event. */
struct FaultDecision
{
    bool drop = false;    ///< Discard the event (loss or CRC discard).
    bool duplicate = false; ///< Deliver a second copy as well.
    Tick extraDelay = 0;  ///< Added to the primary copy's arrival.
    Tick dupDelay = 0;    ///< Added to the duplicate's arrival.
};

/** Per-class tallies of everything the model did. */
struct FaultCounters
{
    std::uint64_t offered[2] = {0, 0};   ///< Indexed by PacketClass.
    std::uint64_t dropped[2] = {0, 0};   ///< Random + scripted losses.
    std::uint64_t corrupted[2] = {0, 0}; ///< CRC discards (subset of none).
    std::uint64_t duplicated[2] = {0, 0};
    std::uint64_t delayed[2] = {0, 0};

    std::uint64_t
    totalDropped() const
    {
        return dropped[0] + dropped[1] + corrupted[0] + corrupted[1];
    }
};

/**
 * The lossy-fabric model. One instance per Cluster; not thread safe
 * (the simulator is single threaded).
 */
class FaultModel
{
  public:
    explicit FaultModel(const FaultConfig &config)
        : config_(config), rng_(config.seed, 0xFA417u)
    {}

    /**
     * Script: drop the nth matching event (1-based) on the src->dst
     * link. Repeated calls accumulate independent script entries.
     */
    void
    dropNth(NodeId src, NodeId dst, PacketClass cls, std::uint64_t nth)
    {
        scripted_.push_back({src, dst, cls, nth});
    }

    /**
     * Script: drop every event on the src->dst link whose offer time t
     * satisfies from <= t < until. src or dst of -1 matches any node.
     */
    void
    blackhole(NodeId src, NodeId dst, Tick from, Tick until)
    {
        blackholes_.push_back({src, dst, from, until});
    }

    /**
     * Script: stall processor `node` at virtual time `at` for
     * `duration` ticks (a one-off delay, exact and deterministic like
     * dropNth). The entry is collected by Cluster::run() -- from every
     * shard's model, so scripting through Cluster::faultModel() stays
     * correct under the sharded engine -- and installed as a stall
     * window on the owning Proc. Zero-duration entries are ignored.
     */
    void
    delayNode(NodeId node, Tick at, Tick duration)
    {
        if (duration > 0)
            delays_.push_back({node, at, duration});
    }

    /** Scripted one-off delays accumulated via delayNode(). */
    const std::vector<DelaySpec> &delayScript() const { return delays_; }

    /**
     * Offer one wire event to the model at virtual time now.
     * Scripted drops take precedence over the probabilistic dice so
     * regression tests stay exact regardless of configured rates.
     */
    FaultDecision apply(NodeId src, NodeId dst, PacketClass cls, Tick now);

    const FaultCounters &counters() const { return ctrs_; }
    const FaultConfig &config() const { return config_; }

    /** Events offered so far on one link (scripted-index debugging). */
    std::uint64_t
    offeredOn(NodeId src, NodeId dst, PacketClass cls) const
    {
        auto it = linkCount_.find(linkKey(src, dst, cls));
        return it == linkCount_.end() ? 0 : it->second;
    }

  private:
    struct ScriptedDrop
    {
        NodeId src;
        NodeId dst;
        PacketClass cls;
        std::uint64_t nth; ///< 1-based index among matching events.
    };

    struct Blackhole
    {
        NodeId src;
        NodeId dst;
        Tick from;
        Tick until;
    };

    static std::tuple<NodeId, NodeId, int>
    linkKey(NodeId src, NodeId dst, PacketClass cls)
    {
        return {src, dst, static_cast<int>(cls)};
    }

    bool scriptedDrop(NodeId src, NodeId dst, PacketClass cls,
                      std::uint64_t count, Tick now);

    FaultConfig config_;
    Rng rng_;
    FaultCounters ctrs_;
    std::vector<ScriptedDrop> scripted_;
    std::vector<Blackhole> blackholes_;
    std::vector<DelaySpec> delays_;
    std::map<std::tuple<NodeId, NodeId, int>, std::uint64_t> linkCount_;
};

} // namespace nowcluster

#endif // NOWCLUSTER_NET_FAULT_HH_
