#include "net/fault.hh"

namespace nowcluster {

bool
FaultModel::scriptedDrop(NodeId src, NodeId dst, PacketClass cls,
                         std::uint64_t count, Tick now)
{
    for (const Blackhole &b : blackholes_) {
        bool link_match = (b.src < 0 || b.src == src) &&
                          (b.dst < 0 || b.dst == dst);
        if (link_match && now >= b.from && now < b.until)
            return true;
    }
    for (auto it = scripted_.begin(); it != scripted_.end(); ++it) {
        if (it->src == src && it->dst == dst && it->cls == cls &&
            it->nth == count) {
            scripted_.erase(it); // Each entry fires exactly once.
            return true;
        }
    }
    return false;
}

FaultDecision
FaultModel::apply(NodeId src, NodeId dst, PacketClass cls, Tick now)
{
    const int ci = static_cast<int>(cls);
    ++ctrs_.offered[ci];
    std::uint64_t count = ++linkCount_[linkKey(src, dst, cls)];

    FaultDecision d;
    if (scriptedDrop(src, dst, cls, count, now)) {
        d.drop = true;
        ++ctrs_.dropped[ci];
        return d;
    }

    // The dice are always rolled in the same order (drop, corrupt, dup,
    // delay) so the random stream consumed per event is fixed and the
    // pattern is reproducible even when rates change between runs of
    // the same seed. Zero-rate classes consume no randomness.
    if (config_.dropRate > 0 && rng_.chance(config_.dropRate)) {
        d.drop = true;
        ++ctrs_.dropped[ci];
        return d;
    }
    if (config_.corruptRate > 0 && rng_.chance(config_.corruptRate)) {
        // Corruption is detected by the receiving NIC's CRC and the
        // packet discarded; in this model that is a drop with its own
        // ledger line.
        d.drop = true;
        ++ctrs_.corrupted[ci];
        return d;
    }
    if (config_.dupRate > 0 && rng_.chance(config_.dupRate)) {
        d.duplicate = true;
        ++ctrs_.duplicated[ci];
        d.dupDelay = 1 + static_cast<Tick>(rng_.below(
                             static_cast<std::uint64_t>(
                                 config_.reorderMaxDelay)));
    }
    if (config_.reorderRate > 0 && rng_.chance(config_.reorderRate)) {
        d.extraDelay = 1 + static_cast<Tick>(rng_.below(
                               static_cast<std::uint64_t>(
                                   config_.reorderMaxDelay)));
        ++ctrs_.delayed[ci];
    }
    return d;
}

} // namespace nowcluster
