/**
 * @file
 * LogGP parameterization of the cluster communication system.
 *
 * Mirrors the paper's Figure 2: each parameter has a distinct insertion
 * point in the message path so the knobs are independent by construction:
 *
 *   o  - stall the host processor around each message write/read
 *   g  - stall the NIC tx context *after* a message is injected
 *   L  - defer the receive-side presence bit (delay queue)
 *   G  - stall the tx context per bulk fragment, proportional to size
 */

#ifndef NOWCLUSTER_NET_LOGGP_HH_
#define NOWCLUSTER_NET_LOGGP_HH_

#include <cstddef>
#include <string>

#include "base/types.hh"
#include "net/fault.hh"

namespace nowcluster {

/**
 * Complete communication-performance description of a simulated machine.
 * Baseline values describe the hardware; the added* knobs emulate slower
 * designs exactly the way the paper's modified LANai firmware does.
 */
struct LogGPParams
{
    /** Host send overhead per message (time to write it to the NIC). */
    Tick oSend = usec(1.8);
    /** Host receive overhead per message (time to read it out). */
    Tick oRecv = usec(4.0);
    /** Overhead knob: added to *both* the send and the receive path. */
    Tick addedO = 0;

    /** NIC injection gap: tx-context occupancy per short message. */
    Tick gap = usec(5.8);

    /** Wire + interface latency from injection to receive presence. */
    Tick latency = usec(5.0);
    /** Latency knob: receive-side delay-queue addition. */
    Tick addedL = 0;

    /** Bulk Gap: tx DMA time per byte (ns/byte). 38 MB/s ~ 26.3 ns/B. */
    double gPerByte = 1e9 / (38.0 * 1e6);

    /**
     * Extension (after Holt et al.'s Flash study, discussed in the
     * paper's Related Work): receive-controller occupancy -- time the
     * receiving NIC's rx context spends on each arriving message. It
     * delays delivery like latency *and* serializes arrivals like gap,
     * which is why the Flash study found applications so sensitive to
     * it. 0 disables the rx pipeline stage entirely.
     */
    Tick occupancy = 0;

    /** Outstanding-message window per destination (fixed, L-independent:
     *  this is what makes effective g rise at huge L, as in Table 2). */
    int window = 8;

    /** NIC tx descriptor FIFO depth; the host stalls when it is full. */
    int txQueueDepth = 8;

    /** Bulk transfers are fragmented into pieces of at most this size. */
    std::size_t maxFragment = 4096;

    /**
     * Extension: enable the switch-fabric contention model (see
     * net/fabric.hh). Off by default -- the paper's constant-latency
     * network. When on, cross-switch packets queue on shared uplinks
     * and downlinks; an idle fabric adds nothing.
     */
    bool fabric = false;
    int fabricHostsPerSwitch = 4;
    double fabricLinkMBps = 160.0;

    /**
     * Extension: two-level fat-tree topology model (net/topology.hh).
     * Supersedes the flat `fabric` model for large clusters: hosts
     * attach to leaf switches, cross-leaf traffic queues on the source
     * leaf's uplink and the destination leaf's downlink, and the spine
     * can be oversubscribed. Mutually exclusive with `fabric`.
     */
    bool topo = false;
    int topoHostsPerLeaf = 32;
    double topoLinkMBps = 160.0;
    double topoOversub = 1.0;
    /** Extra wire latency per cross-leaf packet (the spine hops). */
    Tick topoHopLatency = 0;

    /**
     * Extension: shard the simulation across worker threads with a
     * conservative parallel DES (sim/parallel.hh). 0 = the classic
     * single-heap engine, bit-identical to the original simulator.
     * >= 1 = the sharded engine with that many worker threads. The
     * shard layout is a pure function of the scenario (simShards, or
     * an automatic choice), never of simThreads, so results are
     * byte-identical at any thread count.
     */
    int simThreads = 0;
    /** Shard count for the sharded engine; 0 picks automatically
     *  (min(16, nprocs or leaf count)). */
    int simShards = 0;

    /**
     * Extension: lossy-fabric fault injection (net/fault.hh). When
     * fault.enabled is false no FaultModel is constructed and the wire
     * is perfect, exactly as before.
     */
    FaultConfig fault;

    /**
     * Extension: reliable-delivery protocol (am/reliable.hh) -- the
     * LANai firmware's timeout/retransmit/dup-suppression layer. When
     * false (default) the packet path is bit-identical to the
     * perfect-wire simulator; turn it on together with fault.enabled
     * to survive a lossy fabric.
     */
    bool reliable = false;
    /** Ack-return retransmission budget; 0 derives it from L, g, the
     *  rx occupancy, and the fault model's reorder bound. */
    Tick retxTimeout = 0;
    /** Retries (with exponential backoff) before a channel gives up on
     *  a packet, restores its credit, and reports the failure. */
    int retxMaxRetries = 12;

    /**
     * Extension: collective-algorithm selection policy, parsed by
     * coll::CollPolicy. "" or "naive" keeps the original code paths;
     * "tuned" picks per-invocation via the LogGP cost model;
     * "bcast=chain,allreduce=rdouble" pins individual collectives
     * (implying tuned for the rest).
     */
    std::string collAlg;

    /** Mean LogP overhead o = (oSend + oRecv) / 2 + addedO. */
    Tick
    meanOverhead() const
    {
        return (oSend + oRecv) / 2 + addedO;
    }

    /** Effective per-side send overhead including the knob. */
    Tick sendOverhead() const { return oSend + addedO; }
    /** Effective per-side receive overhead including the knob. */
    Tick recvOverhead() const { return oRecv + addedO; }
    /** Effective one-way latency including the knob. */
    Tick totalLatency() const { return latency + addedL; }

    /** Bulk bandwidth in MB/s implied by gPerByte. */
    double
    bulkMBps() const
    {
        return 1e9 / gPerByte / 1e6;
    }

    /** Set gPerByte from a bandwidth in MB/s. */
    void
    setBulkMBps(double mbps)
    {
        gPerByte = 1e9 / (mbps * 1e6);
    }

    /**
     * Paper-style knob: set the *desired mean overhead* in microseconds.
     * addedO = desired - baseline mean; fatal if below the baseline.
     */
    void setDesiredOverheadUsec(double o_us);

    /** Paper-style knob: set the desired gap in microseconds. */
    void setDesiredGapUsec(double g_us);

    /** Paper-style knob: set the desired latency in microseconds. */
    void setDesiredLatencyUsec(double l_us);

    /** Extension knob: set the rx-controller occupancy in microseconds. */
    void setOccupancyUsec(double o_us);
};

/** Named machine configurations for Table 1. */
struct MachineConfig
{
    std::string name;
    LogGPParams params;

    /** Berkeley NOW: o=2.9us g=5.8us L=5.0us 38 MB/s. */
    static MachineConfig berkeleyNow();
    /** Intel Paragon: o=1.8us g=7.6us L=6.5us 141 MB/s. */
    static MachineConfig intelParagon();
    /** Meiko CS-2: o=1.7us g=13.6us L=7.5us 47 MB/s. */
    static MachineConfig meikoCs2();
};

} // namespace nowcluster

#endif // NOWCLUSTER_NET_LOGGP_HH_
