#include "net/fabric.hh"

#include <algorithm>

#include "base/logging.hh"

namespace nowcluster {

SwitchFabric::SwitchFabric(int nprocs, const Config &config)
    : config_(config)
{
    fatal_if(config.hostsPerSwitch < 1, "need at least one host/switch");
    fatal_if(config.linkMBps <= 0, "link bandwidth must be positive");
    nSwitches_ =
        (nprocs + config.hostsPerSwitch - 1) / config.hostsPerSwitch;
    uplinkBusy_.assign(nSwitches_, 0);
    downlinkBusy_.assign(nSwitches_, 0);
}

Tick
SwitchFabric::serializationTime(std::size_t bytes) const
{
    bytes = std::max(bytes, config_.minPacketBytes);
    double ns_per_byte = 1e9 / (config_.linkMBps * 1e6);
    return static_cast<Tick>(static_cast<double>(bytes) * ns_per_byte +
                             0.5);
}

Tick
SwitchFabric::contentionDelay(NodeId src, NodeId dst, std::size_t bytes,
                              Tick inject)
{
    int s = switchOf(src);
    int d = switchOf(dst);
    if (s == d)
        return 0; // Same leaf crossbar: no shared link.

    Tick ser = serializationTime(bytes);

    // Source switch uplink.
    Tick up_start = std::max(inject, uplinkBusy_[s]);
    uplinkBusy_[s] = up_start + ser;
    Tick at_spine = up_start + ser;

    // Destination switch downlink.
    Tick down_start = std::max(at_spine, downlinkBusy_[d]);
    downlinkBusy_[d] = down_start + ser;
    Tick arrival = down_start + ser;

    // Only the *queueing* is extra: the uncontended traversal cost is
    // already inside the baseline latency L, so an idle fabric is
    // exactly the constant-latency network.
    (void)arrival;
    Tick queueing = (up_start - inject) + (down_start - at_spine);
    totalQueueing_ += queueing;
    return queueing;
}

} // namespace nowcluster
