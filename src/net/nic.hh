/**
 * @file
 * Transmit-side model of the network interface (the "LANai").
 *
 * The tx context is a single serial resource: each descriptor occupies it
 * for `occupancy` ticks (g for shorts, size*G + g for bulk fragments).
 * The host writes descriptors into a finite FIFO and stalls when it is
 * full — this is how g back-pressures the processor during bursts.
 *
 * The receive context is modeled as always available (the paper's LANai
 * has dual hardware contexts precisely so receive proceeds while
 * transmit is stalled), so there is no NicRx class: arrival timestamps
 * are computed at injection and the network schedules delivery directly.
 */

#ifndef NOWCLUSTER_NET_NIC_HH_
#define NOWCLUSTER_NET_NIC_HH_

#include <deque>

#include "base/types.hh"
#include "net/loggp.hh"
#include "obs/tracer.hh"

namespace nowcluster {

/** Deterministic timestamp algebra for the NIC transmit pipeline. */
class NicTx
{
  public:
    explicit NicTx(const LogGPParams &params) : params_(&params) {}

    /** Result of offering a descriptor to the NIC. */
    struct Accept
    {
        /** When the host finished enqueuing (>= offer time if stalled). */
        Tick hostFreeAt;
        /** When the tx context begins injecting this message. */
        Tick injectStart;
        /** When the payload has fully left the NIC (== injectStart for
         *  short messages; injectStart + size*G for bulk fragments). */
        Tick wireAt;
    };

    /**
     * Offer a short message to the NIC at host time h.
     * Occupies the tx context for g after injection.
     */
    Accept
    acceptShort(Tick h, std::uint64_t msg = 0)
    {
        return accept(h, params_->gap, 0, msg);
    }

    /**
     * Offer a bulk fragment of size bytes at host time h.
     * The DMA transfer takes size*G; the injection-loop stall g follows.
     */
    Accept
    acceptBulk(Tick h, std::size_t size, std::uint64_t msg = 0)
    {
        // Converting a double >= 2^63 to Tick is undefined behaviour,
        // so clamp size*G explicitly before rounding. kTickNever/4
        // leaves headroom for the latency/occupancy additions layered
        // on top of wireAt downstream.
        constexpr double kMaxXfer =
            static_cast<double>(kTickNever / 4);
        double xfer_d =
            static_cast<double>(size) * params_->gPerByte + 0.5;
        Tick xfer = xfer_d >= kMaxXfer ? kTickNever / 4
                                       : static_cast<Tick>(xfer_d);
        return accept(h, xfer + params_->gap, xfer, msg);
    }

    /** Time the tx context becomes idle after everything accepted. */
    Tick busyUntil() const { return busyUntil_; }

    /** Attach a span tracer; spans land on `node`'s nic-tx track. */
    void
    attachObs(SpanTracer *obs, NodeId node)
    {
        obs_ = obs;
        node_ = node;
    }

  private:
    Accept accept(Tick h, Tick occupancy, Tick transfer,
                  std::uint64_t msg);

    const LogGPParams *params_;
    SpanTracer *obs_ = nullptr;
    NodeId node_ = -1;
    Tick busyUntil_ = 0;
    /** injectStart of descriptors still logically queued; a slot frees
     *  when its descriptor enters the tx context. */
    std::deque<Tick> slotRelease_;
};

} // namespace nowcluster

#endif // NOWCLUSTER_NET_NIC_HH_
