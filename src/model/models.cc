#include "model/models.hh"

#include "base/logging.hh"
#include "net/loggp.hh"

namespace nowcluster {

LogGPPoint
pointFromParams(const LogGPParams &params)
{
    LogGPPoint pt;
    pt.oSend = params.sendOverhead();
    pt.oRecv = params.recvOverhead();
    pt.gap = params.gap;
    pt.latency = params.totalLatency();
    pt.gPerByte = params.gPerByte;
    pt.occupancy = params.occupancy;
    pt.fragment = params.maxFragment;
    pt.valid = true;
    return pt;
}

Tick
predictOverhead(Tick r_orig, std::uint64_t max_msgs, Tick delta_o)
{
    panic_if(delta_o < 0, "negative added overhead");
    return r_orig + 2 * static_cast<Tick>(max_msgs) * delta_o;
}

Tick
predictGapBurst(Tick r_base, std::uint64_t max_msgs, Tick delta_g)
{
    panic_if(delta_g < 0, "negative added gap");
    return r_base + static_cast<Tick>(max_msgs) * delta_g;
}

Tick
predictGapUniform(Tick r_base, std::uint64_t max_msgs, Tick total_g,
                  Tick mean_interval)
{
    if (total_g <= mean_interval)
        return r_base;
    return r_base +
           static_cast<Tick>(max_msgs) * (total_g - mean_interval);
}

Tick
predictLatencyReads(Tick r_base, std::uint64_t blocking_reads,
                    Tick delta_l)
{
    panic_if(delta_l < 0, "negative added latency");
    return r_base + static_cast<Tick>(blocking_reads) * 2 * delta_l;
}

double
slowdown(Tick runtime, Tick baseline)
{
    if (baseline <= 0)
        return 0.0;
    return static_cast<double>(runtime) / static_cast<double>(baseline);
}

} // namespace nowcluster
