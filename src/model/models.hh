/**
 * @file
 * The analytic sensitivity models of Section 5: closed-form predictions
 * of application runtime under added overhead, gap, and latency.
 */

#ifndef NOWCLUSTER_MODEL_MODELS_HH_
#define NOWCLUSTER_MODEL_MODELS_HH_

#include <cstddef>
#include <cstdint>

#include "base/types.hh"

namespace nowcluster {

struct LogGPParams;

/**
 * One calibrated (L, o, g, G) operating point -- the machine
 * description every analytic predictor consumes. Points come from two
 * sources: pointFromParams() reads the nominal simulator parameters,
 * and Microbench::calibratedPoint() (src/calib) measures them the way
 * Section 3.3 does on real hardware. `valid` distinguishes "no
 * calibration available" (heuristic fallbacks apply) from a real point.
 */
struct LogGPPoint
{
    Tick oSend = 0;   ///< Host send overhead per message.
    Tick oRecv = 0;   ///< Host receive overhead per message.
    Tick gap = 0;     ///< NIC injection gap per short message/fragment.
    Tick latency = 0; ///< One-way wire + interface latency.
    double gPerByte = 0;       ///< Bulk Gap, ns per byte.
    Tick occupancy = 0;        ///< Rx-controller occupancy (extension).
    std::size_t fragment = 4096; ///< Bulk fragmentation size.
    bool valid = false;        ///< False: no point available.

    /** Send-to-usable delay of a short message, oSend + L + oRecv. */
    Tick
    arrival() const
    {
        return oSend + latency + oRecv;
    }
};

/** The operating point implied by a simulator parameter set. */
LogGPPoint pointFromParams(const LogGPParams &params);

/**
 * Overhead model (Section 5.1):
 *   r_pred = r_orig + 2 * m * delta_o
 * where m is the maximum number of messages sent by any processor and
 * delta_o the per-side added overhead. The factor of two arises because
 * every Split-C communication event is one half of a request/response
 * pair: the sender also pays to receive the matching response (or paid
 * to receive the request it is answering).
 */
Tick predictOverhead(Tick r_orig, std::uint64_t max_msgs, Tick delta_o);

/**
 * Burst gap model (Section 5.2):
 *   r_pred = r_base + m * delta_g
 * assumes all messages are sent in bursts faster than the gap, so every
 * message eats the full added gap.
 */
Tick predictGapBurst(Tick r_base, std::uint64_t max_msgs, Tick delta_g);

/**
 * Uniform gap model (Section 5.2):
 *   r_pred = r_base + m * (g - I)  if g > I, else r_base
 * assumes messages are spaced at the application's mean interval I, so
 * gap is only felt once it exceeds that interval.
 */
Tick predictGapUniform(Tick r_base, std::uint64_t max_msgs, Tick total_g,
                       Tick mean_interval);

/**
 * Read-latency model (Section 5.3): every blocking read spans one
 * round trip, so added one-way latency delta_l is paid twice:
 *   r_pred = r_base + reads * 2 * delta_l
 * Only accurate for applications that do nothing to hide latency
 * (EM3D(read) in the paper).
 */
Tick predictLatencyReads(Tick r_base, std::uint64_t blocking_reads,
                         Tick delta_l);

/** Slowdown helper: measured / baseline. */
double slowdown(Tick runtime, Tick baseline);

} // namespace nowcluster

#endif // NOWCLUSTER_MODEL_MODELS_HH_
