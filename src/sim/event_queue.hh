/**
 * @file
 * The discrete-event queue at the heart of the simulator.
 *
 * Events are (when, sequence, closure) triples ordered by time and, for
 * equal times, by insertion order, which makes every run deterministic.
 */

#ifndef NOWCLUSTER_SIM_EVENT_QUEUE_HH_
#define NOWCLUSTER_SIM_EVENT_QUEUE_HH_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "base/types.hh"

namespace nowcluster {

/** Priority queue of timestamped closures with FIFO tie-breaking. */
class EventQueue
{
  public:
    /** Schedule fn to run at absolute time when. */
    void
    schedule(Tick when, std::function<void()> fn)
    {
        heap_.push(Entry{when, nextSeq_++, std::move(fn)});
    }

    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }

    /** Time of the earliest pending event; kTickNever if none. */
    Tick
    nextTime() const
    {
        return heap_.empty() ? kTickNever : heap_.top().when;
    }

    /**
     * Pop and return the earliest event.
     * @pre !empty()
     */
    std::pair<Tick, std::function<void()>>
    pop()
    {
        // std::priority_queue::top() is const; the closure must be moved
        // out, so we const_cast the known-mutable entry. This is the
        // standard workaround and is safe because pop() follows at once.
        Entry &top = const_cast<Entry &>(heap_.top());
        auto result = std::make_pair(top.when, std::move(top.fn));
        heap_.pop();
        return result;
    }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        std::function<void()> fn;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    std::uint64_t nextSeq_ = 0;
};

} // namespace nowcluster

#endif // NOWCLUSTER_SIM_EVENT_QUEUE_HH_
