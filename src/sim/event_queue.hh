/**
 * @file
 * The discrete-event queue at the heart of the simulator.
 *
 * Events are (when, sequence, closure) triples ordered by time and, for
 * equal times, by insertion order, which makes every run deterministic.
 *
 * Layout: the heap itself is an explicit binary heap over 24-byte POD
 * nodes (time, sequence, pool slot); the closures live in a separate
 * slot pool with a freelist. Sift operations therefore move trivially
 * copyable nodes only — never a closure — and pop() moves the closure
 * out of its slot directly, with no const_cast (std::priority_queue
 * exposes only a const top(), which forced the old implementation to
 * cast away constness to move the closure out). Freed slots are reused,
 * so a steady-state simulation stops allocating entirely.
 */

#ifndef NOWCLUSTER_SIM_EVENT_QUEUE_HH_
#define NOWCLUSTER_SIM_EVENT_QUEUE_HH_

#include <cstdint>
#include <utility>
#include <vector>

#include "base/types.hh"
#include "sim/inline_fn.hh"

namespace nowcluster {

/** Priority queue of timestamped closures with FIFO tie-breaking. */
class EventQueue
{
  public:
    /** Schedule fn to run at absolute time when. */
    void
    schedule(Tick when, InlineFn fn)
    {
        std::uint32_t slot;
        if (free_.empty()) {
            slot = static_cast<std::uint32_t>(pool_.size());
            pool_.push_back(std::move(fn));
        } else {
            slot = free_.back();
            free_.pop_back();
            pool_[slot] = std::move(fn);
        }
        heap_.push_back(Node{when, nextSeq_++, slot});
        siftUp(heap_.size() - 1);
    }

    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }

    /** Time of the earliest pending event; kTickNever if none. */
    Tick
    nextTime() const
    {
        return heap_.empty() ? kTickNever : heap_.front().when;
    }

    /**
     * Pop and return the earliest event.
     * @pre !empty()
     */
    std::pair<Tick, InlineFn>
    pop()
    {
        const Node top = heap_.front();
        InlineFn fn = std::move(pool_[top.slot]);
        free_.push_back(top.slot);
        heap_.front() = heap_.back();
        heap_.pop_back();
        if (!heap_.empty())
            siftDown(0);
        return {top.when, std::move(fn)};
    }

    /** Slots ever allocated (tests: steady state must not grow this). */
    std::size_t poolCapacity() const { return pool_.size(); }

  private:
    struct Node
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t slot;
    };

    static bool
    earlier(const Node &a, const Node &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.seq < b.seq;
    }

    void
    siftUp(std::size_t i)
    {
        Node n = heap_[i];
        while (i > 0) {
            std::size_t parent = (i - 1) / 2;
            if (!earlier(n, heap_[parent]))
                break;
            heap_[i] = heap_[parent];
            i = parent;
        }
        heap_[i] = n;
    }

    void
    siftDown(std::size_t i)
    {
        const std::size_t n = heap_.size();
        Node v = heap_[i];
        for (;;) {
            std::size_t kid = 2 * i + 1;
            if (kid >= n)
                break;
            if (kid + 1 < n && earlier(heap_[kid + 1], heap_[kid]))
                ++kid;
            if (!earlier(heap_[kid], v))
                break;
            heap_[i] = heap_[kid];
            i = kid;
        }
        heap_[i] = v;
    }

    std::vector<Node> heap_;
    std::vector<InlineFn> pool_; ///< Closure storage, indexed by slot.
    std::vector<std::uint32_t> free_; ///< Recyclable pool slots.
    std::uint64_t nextSeq_ = 0;
};

} // namespace nowcluster

#endif // NOWCLUSTER_SIM_EVENT_QUEUE_HH_
