/**
 * @file
 * The simulation kernel: a clock plus an event queue.
 */

#ifndef NOWCLUSTER_SIM_SIMULATOR_HH_
#define NOWCLUSTER_SIM_SIMULATOR_HH_

#include <cstdint>

#include "base/logging.hh"
#include "base/types.hh"
#include "sim/event_queue.hh"
#include "sim/inline_fn.hh"

namespace nowcluster {

/**
 * Owns virtual time. Components schedule closures; run() drains the
 * queue in timestamp order, advancing now().
 */
class Simulator
{
  public:
    /** Current virtual time. */
    Tick now() const { return now_; }

    /** Schedule fn at absolute virtual time when (must be >= now()). */
    void
    schedule(Tick when, InlineFn fn)
    {
        panic_if(when < now_, "scheduling event in the past (%lld < %lld)",
                 static_cast<long long>(when),
                 static_cast<long long>(now_));
        events_.schedule(when, std::move(fn));
    }

    /** Schedule fn delta ticks from now. */
    void
    scheduleIn(Tick delta, InlineFn fn)
    {
        // >=, not >: kTickNever itself is the "no event" sentinel, so
        // landing exactly on it is as corrupt as wrapping past it.
        panic_if(delta >= kTickNever - now_,
                 "scheduleIn overflows the Tick clock "
                 "(now %lld + delta %lld)",
                 static_cast<long long>(now_),
                 static_cast<long long>(delta));
        schedule(now_ + delta, std::move(fn));
    }

    /**
     * Run events until the queue is empty or a safety limit of
     * max_events is reached (0 = unlimited).
     * @return number of events executed.
     */
    std::uint64_t
    run(std::uint64_t max_events = 0)
    {
        std::uint64_t executed = 0;
        while (!events_.empty()) {
            if (max_events && executed >= max_events)
                break;
            auto [when, fn] = events_.pop();
            now_ = when;
            fn();
            ++executed;
        }
        executed_ += executed;
        return executed;
    }

    /** Run events with time <= limit. */
    std::uint64_t
    runUntil(Tick limit)
    {
        std::uint64_t executed = 0;
        while (!events_.empty() && events_.nextTime() <= limit) {
            auto [when, fn] = events_.pop();
            now_ = when;
            fn();
            ++executed;
        }
        if (now_ < limit)
            now_ = limit;
        executed_ += executed;
        return executed;
    }

    /**
     * Run events with time strictly < limit, without advancing now()
     * to the limit afterwards. This is the per-window workhorse of the
     * sharded engine: the window end is the earliest tick a remote
     * shard could still inject, so events at exactly that tick must
     * wait for the next merge, and the clock must stay on the last
     * executed event so merged arrivals at the window boundary are
     * never "in the past".
     */
    std::uint64_t
    runBefore(Tick limit)
    {
        std::uint64_t executed = 0;
        while (!events_.empty() && events_.nextTime() < limit) {
            auto [when, fn] = events_.pop();
            now_ = when;
            fn();
            ++executed;
        }
        executed_ += executed;
        return executed;
    }

    /** Time of the earliest pending event (kTickNever if idle). */
    Tick nextTime() const { return events_.nextTime(); }

    /**
     * Execute exactly one event (the earliest).
     * @return false if the queue was empty.
     */
    bool
    step()
    {
        if (events_.empty())
            return false;
        auto [when, fn] = events_.pop();
        now_ = when;
        fn();
        ++executed_;
        return true;
    }

    bool idle() const { return events_.empty(); }
    std::size_t pendingEvents() const { return events_.size(); }

    /** Lifetime count of executed events (perf accounting). */
    std::uint64_t executed() const { return executed_; }

  private:
    Tick now_ = 0;
    std::uint64_t executed_ = 0;
    EventQueue events_;
};

} // namespace nowcluster

#endif // NOWCLUSTER_SIM_SIMULATOR_HH_
