/**
 * @file
 * A conservative (lookahead-windowed) parallel discrete-event engine.
 *
 * The engine owns nothing but the synchronization skeleton: the caller
 * provides three callbacks and the engine runs them in a fixed cadence
 * across worker threads. Each round is
 *
 *   merge(s)  for every shard   - drain inbound cross-shard channels
 *   ---- barrier A (plan() runs serially in the completion step) ----
 *   exec(s, windowEnd)          - run local events with time < windowEnd
 *   ---- barrier B ------------------------------------------------
 *
 * plan() inspects global state (all shards are quiescent at that
 * point) and returns the end of the next window, conventionally
 * min(nextTime over shards) + lookahead; returning kTickNever stops
 * the engine. The conservative invariant the caller must uphold: any
 * event a shard sends to another shard while executing at time t must
 * arrive no earlier than t + lookahead, so nothing merged in round
 * k+1 can land before round k's windowEnd.
 *
 * Shard -> thread assignment is static (shard s runs on thread
 * s mod T), which keeps fiber stacks, RNGs, and fault models on a
 * stable thread for their whole lifetime regardless of load.
 *
 * The calling thread participates as thread 0, so nthreads == 1
 * degenerates to a serial windowed loop with no thread creation --
 * that is what makes `--sim-threads 1/2/4` byte-identical: the window
 * schedule depends only on the shard layout, never on T.
 */

#ifndef NOWCLUSTER_SIM_PARALLEL_HH_
#define NOWCLUSTER_SIM_PARALLEL_HH_

#include <functional>

#include "base/types.hh"

namespace nowcluster {

class ParallelEngine
{
  public:
    struct Callbacks
    {
        /** Drain cross-shard inboxes into shard s's event queue. */
        std::function<void(int shard)> merge;
        /** Execute shard s's local events with time < windowEnd. */
        std::function<void(int shard, Tick windowEnd)> exec;
        /**
         * Serial planning step between merge and exec; all shards are
         * quiescent. @return the next window end, or kTickNever to
         * stop.
         */
        std::function<Tick()> plan;
    };

    /** nthreads is clamped to [1, nshards]. */
    ParallelEngine(int nshards, int nthreads);

    /** Run rounds until plan() returns kTickNever. Blocks. */
    void run(const Callbacks &cb);

    int nshards() const { return nshards_; }
    int nthreads() const { return nthreads_; }

  private:
    int nshards_;
    int nthreads_;
};

} // namespace nowcluster

#endif // NOWCLUSTER_SIM_PARALLEL_HH_
