/**
 * @file
 * Stackful coroutines (fibers) used to run one SPMD program instance per
 * simulated processor.
 *
 * Built on ucontext so that application code can block in the middle of
 * arbitrarily nested calls (reads, locks, barriers) exactly like a real
 * Split-C program would, while the event-driven kernel advances virtual
 * time underneath.
 *
 * Stacks come from a thread-local pool (FiberStackPool): a sweep creates
 * and destroys one fiber per node per simulation point, and recycling
 * the 256 KiB stacks instead of re-new-ing them removes the dominant
 * allocation cost of standing up each point. The pool is thread-local so
 * parallel experiment workers (harness/runner.hh) never contend or share
 * stack memory across threads.
 */

#ifndef NOWCLUSTER_SIM_FIBER_HH_
#define NOWCLUSTER_SIM_FIBER_HH_

#include <ucontext.h>

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace nowcluster {

/**
 * Thread-local recycler of fiber stacks. acquire() prefers a pooled
 * stack of the exact requested size; release() keeps up to kMaxPooled
 * stacks for reuse and frees the rest.
 */
class FiberStackPool
{
  public:
    /** Stacks retained per thread; covers a 64-node simulation point. */
    static constexpr std::size_t kMaxPooled = 64;

    /** The calling thread's pool. */
    static FiberStackPool &local();

    /** Get a stack of exactly `size` bytes (pooled or freshly made). */
    char *acquire(std::size_t size);

    /** Return a stack obtained from acquire(). */
    void release(char *stack, std::size_t size);

    /** Free every pooled stack (tests; worker shutdown is automatic). */
    void clear();

    std::size_t pooledCount() const { return pooled_.size(); }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

    ~FiberStackPool();

  private:
    struct PooledStack
    {
        char *stack;
        std::size_t size;
    };

    std::vector<PooledStack> pooled_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

/**
 * A cooperatively scheduled execution context with its own stack.
 *
 * Only one fiber runs at a time; resume() transfers control from the
 * scheduler into the fiber, and yield() transfers back. Fibers must not
 * be resumed after finishing.
 */
class Fiber
{
  public:
    /**
     * Create a fiber that will run body when first resumed.
     * @param body  The function to execute on the fiber's stack.
     * @param stack_size  Stack size in bytes (default 256 KiB).
     */
    explicit Fiber(std::function<void()> body,
                   std::size_t stack_size = 256 * 1024);

    /** Stack size this fiber was created with. */
    std::size_t stackSize() const { return stackSize_; }

    ~Fiber();

    Fiber(const Fiber &) = delete;
    Fiber &operator=(const Fiber &) = delete;

    /**
     * Run the fiber until it yields or finishes.
     * Must be called from scheduler context (not from inside a fiber).
     */
    void resume();

    /**
     * Suspend the currently running fiber, returning control to the
     * resume() call that started it. Must be called from fiber context.
     */
    static void yield();

    /** The fiber currently executing, or nullptr in scheduler context. */
    static Fiber *current();

    /** True once body has returned. */
    bool finished() const { return finished_; }

  private:
    static void trampoline();

    std::function<void()> body_;
    char *stack_; ///< Owned; returned to FiberStackPool::local().
    std::size_t stackSize_;
    ucontext_t context_;
    ucontext_t returnContext_;
    bool started_ = false;
    bool finished_ = false;
    /**
     * AddressSanitizer fiber-switch bookkeeping (unused otherwise):
     * ASan tracks a shadow stack per thread and must be told about every
     * swapcontext, or it reports wild stack-use-after-return errors.
     */
    void *asanMainFake_ = nullptr;
    void *asanFiberFake_ = nullptr;
    const void *asanReturnStack_ = nullptr;
    std::size_t asanReturnSize_ = 0;
    /**
     * ThreadSanitizer equivalent: TSan models each ucontext as a
     * "fiber" and must be told about every switch, or it reports
     * false races between frames that merely share the OS thread.
     */
    void *tsanFiber_ = nullptr;
    void *tsanReturn_ = nullptr;
};

} // namespace nowcluster

#endif // NOWCLUSTER_SIM_FIBER_HH_
