/**
 * @file
 * Stackful coroutines (fibers) used to run one SPMD program instance per
 * simulated processor.
 *
 * Built on ucontext so that application code can block in the middle of
 * arbitrarily nested calls (reads, locks, barriers) exactly like a real
 * Split-C program would, while the event-driven kernel advances virtual
 * time underneath.
 */

#ifndef NOWCLUSTER_SIM_FIBER_HH_
#define NOWCLUSTER_SIM_FIBER_HH_

#include <ucontext.h>

#include <cstddef>
#include <functional>
#include <memory>

namespace nowcluster {

/**
 * A cooperatively scheduled execution context with its own stack.
 *
 * Only one fiber runs at a time; resume() transfers control from the
 * scheduler into the fiber, and yield() transfers back. Fibers must not
 * be resumed after finishing.
 */
class Fiber
{
  public:
    /**
     * Create a fiber that will run body when first resumed.
     * @param body  The function to execute on the fiber's stack.
     * @param stack_size  Stack size in bytes (default 256 KiB).
     */
    explicit Fiber(std::function<void()> body,
                   std::size_t stack_size = 256 * 1024);

    /** Stack size this fiber was created with. */
    std::size_t stackSize() const { return stackSize_; }

    ~Fiber();

    Fiber(const Fiber &) = delete;
    Fiber &operator=(const Fiber &) = delete;

    /**
     * Run the fiber until it yields or finishes.
     * Must be called from scheduler context (not from inside a fiber).
     */
    void resume();

    /**
     * Suspend the currently running fiber, returning control to the
     * resume() call that started it. Must be called from fiber context.
     */
    static void yield();

    /** The fiber currently executing, or nullptr in scheduler context. */
    static Fiber *current();

    /** True once body has returned. */
    bool finished() const { return finished_; }

  private:
    static void trampoline();

    std::function<void()> body_;
    std::unique_ptr<char[]> stack_;
    std::size_t stackSize_;
    ucontext_t context_;
    ucontext_t returnContext_;
    bool started_ = false;
    bool finished_ = false;
    /**
     * AddressSanitizer fiber-switch bookkeeping (unused otherwise):
     * ASan tracks a shadow stack per thread and must be told about every
     * swapcontext, or it reports wild stack-use-after-return errors.
     */
    void *asanMainFake_ = nullptr;
    void *asanFiberFake_ = nullptr;
    const void *asanReturnStack_ = nullptr;
    std::size_t asanReturnSize_ = 0;
};

} // namespace nowcluster

#endif // NOWCLUSTER_SIM_FIBER_HH_
