#include "sim/parallel.hh"

#include <algorithm>
#include <barrier>
#include <thread>
#include <vector>

#include "base/logging.hh"

namespace nowcluster {

ParallelEngine::ParallelEngine(int nshards, int nthreads)
    : nshards_(nshards), nthreads_(std::clamp(nthreads, 1, nshards))
{
    panic_if(nshards < 1, "ParallelEngine needs at least one shard");
}

void
ParallelEngine::run(const Callbacks &cb)
{
    const int T = nthreads_;
    // Written only by barrier A's completion step, which the barrier
    // orders before any thread resumes; no atomics needed.
    Tick windowEnd = 0;

    std::barrier planBar(T, [&]() noexcept { windowEnd = cb.plan(); });
    std::barrier execBar(T);

    auto worker = [&](int t) {
        for (;;) {
            for (int s = t; s < nshards_; s += T)
                cb.merge(s);
            planBar.arrive_and_wait();
            if (windowEnd == kTickNever)
                break;
            for (int s = t; s < nshards_; s += T)
                cb.exec(s, windowEnd);
            execBar.arrive_and_wait();
        }
    };

    if (T == 1) {
        worker(0);
        return;
    }
    std::vector<std::thread> threads;
    threads.reserve(T - 1);
    for (int t = 1; t < T; ++t)
        threads.emplace_back(worker, t);
    worker(0);
    for (auto &th : threads)
        th.join();
}

} // namespace nowcluster
