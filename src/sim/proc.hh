/**
 * @file
 * A simulated processor: a fiber coupled to the event-driven kernel.
 *
 * The fiber never runs ahead of virtual time. Every operation that
 * consumes processor time goes through compute(), which schedules a wake
 * event and yields; every blocking operation goes through block(), which
 * suspends until some component calls wake(). This gives deterministic,
 * faithful interleaving with the network model.
 */

#ifndef NOWCLUSTER_SIM_PROC_HH_
#define NOWCLUSTER_SIM_PROC_HH_

#include <functional>
#include <memory>
#include <vector>

#include "base/types.hh"
#include "obs/tracer.hh"
#include "sim/fiber.hh"
#include "sim/simulator.hh"

namespace nowcluster {

/** Execution state of a simulated processor. */
enum class ProcState
{
    Created,   ///< Not yet started.
    Ready,     ///< Wake event scheduled; will run at that event.
    Running,   ///< Fiber currently executing.
    Blocked,   ///< Suspended; waiting for wake().
    Done,      ///< Body returned.
};

/**
 * One simulated processor. The body function runs on a fiber and calls
 * compute()/block() to interact with virtual time.
 */
class Proc
{
  public:
    /**
     * @param sim  The owning simulator.
     * @param id   Processor rank.
     * @param body Per-processor program; receives this Proc.
     */
    Proc(Simulator &sim, NodeId id, std::function<void(Proc &)> body);

    Proc(const Proc &) = delete;
    Proc &operator=(const Proc &) = delete;

    /** Schedule the first activation at virtual time at. */
    void start(Tick at = 0);

    /**
     * Consume dt of processor time: schedules a wake at now+dt and
     * yields to the kernel. Must be called from this proc's fiber.
     * dt == 0 is a no-op (no yield), keeping hot paths cheap.
     *
     * When a tracer is attached, the interval is recorded on this
     * node's CPU track under `cat` (tagged with message `msg` when the
     * time serves a specific packet). Recording is passive: timestamps
     * are identical with and without a tracer.
     */
    void compute(Tick dt, SpanCat cat = SpanCat::Compute,
                 std::uint64_t msg = 0);

    /**
     * Suspend until another component calls wake(). Must be called from
     * this proc's fiber. On return, virtual time is the wake time.
     */
    void block();

    /**
     * Make a blocked proc runnable again no earlier than time at
     * (defaults to the current virtual time). Spurious wakes of a
     * non-blocked proc are ignored, so components may wake unconditionally.
     */
    void wake(Tick at = -1);

    /**
     * Install a one-off stall window [from, from+duration): the
     * processor is preempted for the window's full extent. compute()
     * intervals overlapping a window stretch by the overlap, and
     * activations (wake/start) landing inside one are deferred to its
     * end. The stall models OS-jitter style CPU interference only --
     * NIC contexts keep running -- and is pure scenario state, so runs
     * stay deterministic at any thread count. Windows must be installed
     * before virtual time reaches `from`; overlaps are merged.
     */
    void injectStall(Tick from, Tick duration);

    NodeId id() const { return id_; }
    ProcState state() const { return state_; }
    bool done() const { return state_ == ProcState::Done; }
    Simulator &sim() { return sim_; }

    /** Current virtual time (the proc's local clock == global clock). */
    Tick now() const { return sim_.now(); }

    /** Total time this proc has spent in compute(). */
    Tick busyTime() const { return busyTime_; }

    /** Attach (or detach, with nullptr) a span tracer. */
    void attachObs(SpanTracer *obs) { obs_ = obs; }
    SpanTracer *obs() const { return obs_; }

    /** True if the currently executing fiber belongs to this proc. */
    bool isCurrent() const { return Fiber::current() == fiber_.get(); }

  private:
    struct StallWindow
    {
        Tick from;
        Tick until; ///< Exclusive: time `until` is runnable again.
    };

    /** Event body: switch into the fiber. */
    void activate();

    /** First runnable instant at or after `at` (stall deferral). */
    Tick deferPastStalls(Tick at) const;

    Simulator &sim_;
    NodeId id_;
    std::function<void(Proc &)> body_;
    std::unique_ptr<Fiber> fiber_;
    ProcState state_ = ProcState::Created;
    Tick busyTime_ = 0;
    SpanTracer *obs_ = nullptr;
    // Wake bookkeeping: earliest requested wake while blocked.
    bool wakePending_ = false;
    Tick wakeAt_ = 0;
    /** One-off stall windows, sorted by `from` and disjoint. */
    std::vector<StallWindow> stalls_;
};

} // namespace nowcluster

#endif // NOWCLUSTER_SIM_PROC_HH_
