/**
 * @file
 * A bounded single-producer single-consumer channel with an unbounded
 * spill list, used for cross-shard event traffic in the parallel
 * discrete-event engine (sim/parallel.hh).
 *
 * The fast path is a classic lock-free ring: the producer writes
 * head_, the consumer writes tail_, and each side only reads the
 * other's index with acquire ordering. When the ring fills mid-window
 * the producer falls back to a spill vector it alone appends to; the
 * consumer drains ring-then-spill, which preserves FIFO order because
 * once a message has spilled every later message spills too (the ring
 * is only emptied between windows).
 *
 * The spill vector itself is not synchronized: the engine's window
 * barrier separates every producer phase from every consumer phase, so
 * the two sides never touch it concurrently (the barrier provides the
 * happens-before edge ThreadSanitizer needs).
 */

#ifndef NOWCLUSTER_SIM_SPSC_HH_
#define NOWCLUSTER_SIM_SPSC_HH_

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

namespace nowcluster {

template <typename T>
class SpscChannel
{
  public:
    explicit SpscChannel(std::size_t capacity = 256)
        : buf_(capacity < 2 ? 2 : capacity)
    {
    }

    SpscChannel(const SpscChannel &) = delete;
    SpscChannel &operator=(const SpscChannel &) = delete;

    /** Producer side. Never fails; overflow goes to the spill list. */
    void
    push(T &&v)
    {
        if (spilled_ || !tryPush(std::move(v))) {
            spilled_ = true;
            spill_.push_back(std::move(v));
        }
    }

    /**
     * Consumer side: ring first, then spill. @return false once the
     * channel is empty (which also resets the spill list).
     */
    bool
    pop(T &out)
    {
        if (tryPop(out))
            return true;
        if (spillNext_ < spill_.size()) {
            out = std::move(spill_[spillNext_++]);
            return true;
        }
        if (spillNext_) {
            spill_.clear();
            spillNext_ = 0;
            spilled_ = false;
        }
        return false;
    }

    std::size_t capacity() const { return buf_.size() - 1; }

  private:
    bool
    tryPush(T &&v)
    {
        const std::size_t h = head_.load(std::memory_order_relaxed);
        const std::size_t n = h + 1 == buf_.size() ? 0 : h + 1;
        if (n == tail_.load(std::memory_order_acquire))
            return false; // Full.
        buf_[h] = std::move(v);
        head_.store(n, std::memory_order_release);
        return true;
    }

    bool
    tryPop(T &out)
    {
        const std::size_t t = tail_.load(std::memory_order_relaxed);
        if (t == head_.load(std::memory_order_acquire))
            return false; // Empty.
        out = std::move(buf_[t]);
        tail_.store(t + 1 == buf_.size() ? 0 : t + 1,
                    std::memory_order_release);
        return true;
    }

    std::vector<T> buf_;
    std::atomic<std::size_t> head_{0};
    std::atomic<std::size_t> tail_{0};

    /** Producer-owned overflow; consumer-drained between windows. */
    std::vector<T> spill_;
    std::size_t spillNext_ = 0;
    bool spilled_ = false;
};

} // namespace nowcluster

#endif // NOWCLUSTER_SIM_SPSC_HH_
