#include "sim/proc.hh"

#include <algorithm>

#include "base/logging.hh"

namespace nowcluster {

Proc::Proc(Simulator &sim, NodeId id, std::function<void(Proc &)> body)
    : sim_(sim), id_(id), body_(std::move(body))
{
    fiber_ = std::make_unique<Fiber>([this] { body_(*this); });
}

void
Proc::start(Tick at)
{
    panic_if(state_ != ProcState::Created, "proc %d started twice", id_);
    state_ = ProcState::Ready;
    sim_.schedule(deferPastStalls(at), [this] { activate(); });
}

void
Proc::injectStall(Tick from, Tick duration)
{
    panic_if(from < 0 || duration < 0,
             "stall window [%lld, +%lld) on proc %d is negative",
             static_cast<long long>(from),
             static_cast<long long>(duration), id_);
    if (duration == 0)
        return;
    stalls_.push_back({from, from + duration});
    std::sort(stalls_.begin(), stalls_.end(),
              [](const StallWindow &a, const StallWindow &b) {
                  return a.from < b.from;
              });
    // Keep the list disjoint and ordered so the sweeps below can walk
    // it once: overlapping or touching windows merge into one.
    std::vector<StallWindow> merged;
    merged.reserve(stalls_.size());
    for (const StallWindow &w : stalls_) {
        if (!merged.empty() && w.from <= merged.back().until)
            merged.back().until = std::max(merged.back().until, w.until);
        else
            merged.push_back(w);
    }
    stalls_.swap(merged);
}

Tick
Proc::deferPastStalls(Tick at) const
{
    for (const StallWindow &w : stalls_) {
        if (at < w.from)
            break;
        if (at < w.until)
            return w.until;
    }
    return at;
}

void
Proc::activate()
{
    panic_if(state_ != ProcState::Ready, "activating proc %d in state %d",
             id_, static_cast<int>(state_));
    state_ = ProcState::Running;
    fiber_->resume();
    if (fiber_->finished())
        state_ = ProcState::Done;
    // Otherwise the fiber yielded via compute() (state Ready, event
    // already scheduled) or block() (state Blocked, waiting for wake).
}

void
Proc::compute(Tick dt, SpanCat cat, std::uint64_t msg)
{
    panic_if(!isCurrent(), "compute() outside proc %d's fiber", id_);
    panic_if(dt < 0, "negative compute time %lld",
             static_cast<long long>(dt));
    busyTime_ += dt; // Work time only: stall windows are idle.
    if (dt == 0)
        return;
    const Tick t0 = sim_.now();
    Tick end = t0 + dt;
    if (!stalls_.empty()) {
        // Preemption sweep: spend the work in the gaps between stall
        // windows; each overlapped window pushes the finish out by its
        // full extent.
        Tick cursor = t0, remaining = dt;
        for (const StallWindow &w : stalls_) {
            if (w.until <= cursor)
                continue;
            const Tick avail = w.from > cursor ? w.from - cursor : 0;
            if (remaining <= avail) {
                cursor += remaining;
                remaining = 0;
                break;
            }
            remaining -= avail;
            cursor = w.until;
        }
        end = cursor + remaining;
    }
    state_ = ProcState::Ready;
    sim_.scheduleIn(end - t0, [this] { activate(); });
    Fiber::yield();
    if (!obs_)
        return;
    if (end == t0 + dt) {
        obs_->span(id_, TrackKind::Cpu, cat, t0, end, msg);
        return;
    }
    // Preempted: record one span per busy segment so the timeline (and
    // the wavefront analyzer's idle diff) shows the injected gap.
    Tick cursor = t0, remaining = dt;
    for (const StallWindow &w : stalls_) {
        if (w.until <= cursor)
            continue;
        const Tick avail = w.from > cursor ? w.from - cursor : 0;
        const Tick run = std::min(remaining, avail);
        if (run > 0)
            obs_->span(id_, TrackKind::Cpu, cat, cursor, cursor + run,
                       msg);
        remaining -= run;
        if (remaining == 0)
            return;
        cursor = w.until;
    }
    obs_->span(id_, TrackKind::Cpu, cat, cursor, cursor + remaining, msg);
}

void
Proc::block()
{
    panic_if(!isCurrent(), "block() outside proc %d's fiber", id_);
    if (wakePending_) {
        // A wake was posted while we were running (e.g., one of our own
        // handlers satisfied the condition): don't suspend at all.
        wakePending_ = false;
        return;
    }
    state_ = ProcState::Blocked;
    Fiber::yield();
}

void
Proc::wake(Tick at)
{
    if (at < 0)
        at = sim_.now();
    switch (state_) {
      case ProcState::Blocked:
        state_ = ProcState::Ready;
        sim_.schedule(deferPastStalls(at), [this] { activate(); });
        break;
      case ProcState::Running:
        // Wake posted from this proc's own call chain (during poll);
        // remember it so the next block() returns immediately.
        wakePending_ = true;
        break;
      case ProcState::Ready:
      case ProcState::Created:
      case ProcState::Done:
        // Already scheduled, not started, or finished: nothing to do.
        break;
    }
}

} // namespace nowcluster
