#include "sim/proc.hh"

#include "base/logging.hh"

namespace nowcluster {

Proc::Proc(Simulator &sim, NodeId id, std::function<void(Proc &)> body)
    : sim_(sim), id_(id), body_(std::move(body))
{
    fiber_ = std::make_unique<Fiber>([this] { body_(*this); });
}

void
Proc::start(Tick at)
{
    panic_if(state_ != ProcState::Created, "proc %d started twice", id_);
    state_ = ProcState::Ready;
    sim_.schedule(at, [this] { activate(); });
}

void
Proc::activate()
{
    panic_if(state_ != ProcState::Ready, "activating proc %d in state %d",
             id_, static_cast<int>(state_));
    state_ = ProcState::Running;
    fiber_->resume();
    if (fiber_->finished())
        state_ = ProcState::Done;
    // Otherwise the fiber yielded via compute() (state Ready, event
    // already scheduled) or block() (state Blocked, waiting for wake).
}

void
Proc::compute(Tick dt, SpanCat cat, std::uint64_t msg)
{
    panic_if(!isCurrent(), "compute() outside proc %d's fiber", id_);
    panic_if(dt < 0, "negative compute time %lld",
             static_cast<long long>(dt));
    busyTime_ += dt;
    if (dt == 0)
        return;
    const Tick t0 = sim_.now();
    state_ = ProcState::Ready;
    sim_.scheduleIn(dt, [this] { activate(); });
    Fiber::yield();
    if (obs_)
        obs_->span(id_, TrackKind::Cpu, cat, t0, t0 + dt, msg);
}

void
Proc::block()
{
    panic_if(!isCurrent(), "block() outside proc %d's fiber", id_);
    if (wakePending_) {
        // A wake was posted while we were running (e.g., one of our own
        // handlers satisfied the condition): don't suspend at all.
        wakePending_ = false;
        return;
    }
    state_ = ProcState::Blocked;
    Fiber::yield();
}

void
Proc::wake(Tick at)
{
    if (at < 0)
        at = sim_.now();
    switch (state_) {
      case ProcState::Blocked:
        state_ = ProcState::Ready;
        sim_.schedule(at, [this] { activate(); });
        break;
      case ProcState::Running:
        // Wake posted from this proc's own call chain (during poll);
        // remember it so the next block() returns immediately.
        wakePending_ = true;
        break;
      case ProcState::Ready:
      case ProcState::Created:
      case ProcState::Done:
        // Already scheduled, not started, or finished: nothing to do.
        break;
    }
}

} // namespace nowcluster
