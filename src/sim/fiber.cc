#include "sim/fiber.hh"

#include "base/logging.hh"

// AddressSanitizer must be told about every stack switch; without the
// start/finish annotations it attributes fiber frames to the scheduler
// stack and reports false stack-buffer-overflow / use-after-return
// errors under scripts/check_sanitize.sh.
#if defined(__SANITIZE_ADDRESS__)
#define NOWCLUSTER_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define NOWCLUSTER_ASAN_FIBERS 1
#endif
#endif

#ifdef NOWCLUSTER_ASAN_FIBERS
#include <sanitizer/common_interface_defs.h>
#endif

namespace nowcluster {

namespace {

// The fiber currently executing on this thread. The simulator is single
// threaded; thread_local keeps tests that spawn threads safe anyway.
thread_local Fiber *current_fiber = nullptr;

// Handoff slot for the trampoline: makecontext() can only pass ints
// portably, so the Fiber* is passed through this thread-local instead.
thread_local Fiber *starting_fiber = nullptr;

} // namespace

Fiber::Fiber(std::function<void()> body, std::size_t stack_size)
    : body_(std::move(body)), stack_(new char[stack_size]),
      stackSize_(stack_size)
{
    panic_if(stack_size < 16 * 1024, "fiber stack too small: %zu",
             stack_size);
    if (getcontext(&context_) != 0)
        panic("getcontext failed");
    context_.uc_stack.ss_sp = stack_.get();
    context_.uc_stack.ss_size = stack_size;
    context_.uc_link = &returnContext_;
    makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::trampoline),
                0);
}

Fiber::~Fiber()
{
    // Destroying a suspended (started but unfinished) fiber leaks any
    // resources held by frames on its stack; warn so tests notice.
    if (started_ && !finished_)
        warn("destroying unfinished fiber");
}

void
Fiber::trampoline()
{
    Fiber *self = starting_fiber;
    starting_fiber = nullptr;
#ifdef NOWCLUSTER_ASAN_FIBERS
    // Complete the switch begun in resume(), learning where the
    // scheduler's stack lives so yield() can announce switches back.
    __sanitizer_finish_switch_fiber(nullptr, &self->asanReturnStack_,
                                    &self->asanReturnSize_);
#endif
    self->body_();
    self->finished_ = true;
    current_fiber = nullptr;
#ifdef NOWCLUSTER_ASAN_FIBERS
    // This stack is dead after the uc_link switch: fake_stack_save of
    // nullptr tells ASan to release its shadow.
    __sanitizer_start_switch_fiber(nullptr, self->asanReturnStack_,
                                   self->asanReturnSize_);
#endif
    // Returning switches to uc_link (returnContext_).
}

void
Fiber::resume()
{
    panic_if(current_fiber != nullptr,
             "Fiber::resume called from inside a fiber");
    panic_if(finished_, "resuming a finished fiber");
    current_fiber = this;
    if (!started_) {
        started_ = true;
        starting_fiber = this;
    }
#ifdef NOWCLUSTER_ASAN_FIBERS
    __sanitizer_start_switch_fiber(&asanMainFake_, stack_.get(),
                                   stackSize_);
#endif
    if (swapcontext(&returnContext_, &context_) != 0)
        panic("swapcontext into fiber failed");
#ifdef NOWCLUSTER_ASAN_FIBERS
    __sanitizer_finish_switch_fiber(asanMainFake_, nullptr, nullptr);
#endif
    // We only get back here after the fiber yields or finishes.
    current_fiber = nullptr;
}

void
Fiber::yield()
{
    Fiber *self = current_fiber;
    panic_if(self == nullptr, "Fiber::yield called outside a fiber");
    current_fiber = nullptr;
#ifdef NOWCLUSTER_ASAN_FIBERS
    __sanitizer_start_switch_fiber(&self->asanFiberFake_,
                                   self->asanReturnStack_,
                                   self->asanReturnSize_);
#endif
    if (swapcontext(&self->context_, &self->returnContext_) != 0)
        panic("swapcontext out of fiber failed");
#ifdef NOWCLUSTER_ASAN_FIBERS
    __sanitizer_finish_switch_fiber(self->asanFiberFake_,
                                    &self->asanReturnStack_,
                                    &self->asanReturnSize_);
#endif
    current_fiber = self;
}

Fiber *
Fiber::current()
{
    return current_fiber;
}

} // namespace nowcluster
