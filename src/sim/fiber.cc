#include "sim/fiber.hh"

#include "base/logging.hh"

// AddressSanitizer must be told about every stack switch; without the
// start/finish annotations it attributes fiber frames to the scheduler
// stack and reports false stack-buffer-overflow / use-after-return
// errors under scripts/check_sanitize.sh.
#if defined(__SANITIZE_ADDRESS__)
#define NOWCLUSTER_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define NOWCLUSTER_ASAN_FIBERS 1
#endif
#endif

// ThreadSanitizer likewise models each ucontext as a fiber; the
// create/switch/destroy annotations keep it from reporting false races
// between frames that alternate on the same OS thread
// (NOWCLUSTER_SANITIZE=thread; scripts/check_sanitize.sh thread).
#if defined(__SANITIZE_THREAD__)
#define NOWCLUSTER_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define NOWCLUSTER_TSAN_FIBERS 1
#endif
#endif

#ifdef NOWCLUSTER_ASAN_FIBERS
#include <sanitizer/asan_interface.h>
#include <sanitizer/common_interface_defs.h>
#endif
#ifdef NOWCLUSTER_TSAN_FIBERS
#include <sanitizer/tsan_interface.h>
#endif

namespace nowcluster {

namespace {

// The fiber currently executing on this thread. One simulation runs
// entirely on one thread; thread_local keeps the parallel experiment
// runner (and tests that spawn threads) safe.
thread_local Fiber *current_fiber = nullptr;

// Handoff slot for the trampoline: makecontext() can only pass ints
// portably, so the Fiber* is passed through this thread-local instead.
thread_local Fiber *starting_fiber = nullptr;

} // namespace

// ----------------------------------------------------------------------
// FiberStackPool
// ----------------------------------------------------------------------

FiberStackPool &
FiberStackPool::local()
{
    thread_local FiberStackPool pool;
    return pool;
}

char *
FiberStackPool::acquire(std::size_t size)
{
    // Newest-first: the most recently released stack is the most likely
    // to still be warm in cache, and sizes are uniform in practice.
    for (std::size_t i = pooled_.size(); i-- > 0;) {
        if (pooled_[i].size == size) {
            char *stack = pooled_[i].stack;
            pooled_.erase(pooled_.begin() + static_cast<long>(i));
            ++hits_;
#ifdef NOWCLUSTER_ASAN_FIBERS
            // Clear any shadow poison left by the previous occupant's
            // dead frames before handing the memory to a new fiber.
            __asan_unpoison_memory_region(stack, size);
#endif
            return stack;
        }
    }
    ++misses_;
    return new char[size];
}

void
FiberStackPool::release(char *stack, std::size_t size)
{
    if (pooled_.size() >= kMaxPooled) {
        delete[] stack;
        return;
    }
#ifdef NOWCLUSTER_ASAN_FIBERS
    __asan_unpoison_memory_region(stack, size);
#endif
    pooled_.push_back(PooledStack{stack, size});
}

void
FiberStackPool::clear()
{
    for (PooledStack &p : pooled_)
        delete[] p.stack;
    pooled_.clear();
}

FiberStackPool::~FiberStackPool()
{
    clear();
}

// ----------------------------------------------------------------------
// Fiber
// ----------------------------------------------------------------------

Fiber::Fiber(std::function<void()> body, std::size_t stack_size)
    : body_(std::move(body)),
      stack_(FiberStackPool::local().acquire(stack_size)),
      stackSize_(stack_size)
{
    panic_if(stack_size < 16 * 1024, "fiber stack too small: %zu",
             stack_size);
    if (getcontext(&context_) != 0)
        panic("getcontext failed");
    context_.uc_stack.ss_sp = stack_;
    context_.uc_stack.ss_size = stack_size;
    context_.uc_link = &returnContext_;
    makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::trampoline),
                0);
#ifdef NOWCLUSTER_TSAN_FIBERS
    tsanFiber_ = __tsan_create_fiber(0);
#endif
}

Fiber::~Fiber()
{
    // Destroying a suspended (started but unfinished) fiber leaks any
    // resources held by frames on its stack; warn so tests notice.
    if (started_ && !finished_)
        warn("destroying unfinished fiber");
#ifdef NOWCLUSTER_TSAN_FIBERS
    if (tsanFiber_)
        __tsan_destroy_fiber(tsanFiber_);
#endif
    FiberStackPool::local().release(stack_, stackSize_);
}

void
Fiber::trampoline()
{
    Fiber *self = starting_fiber;
    starting_fiber = nullptr;
#ifdef NOWCLUSTER_ASAN_FIBERS
    // Complete the switch begun in resume(), learning where the
    // scheduler's stack lives so yield() can announce switches back.
    __sanitizer_finish_switch_fiber(nullptr, &self->asanReturnStack_,
                                    &self->asanReturnSize_);
#endif
    self->body_();
    self->finished_ = true;
    current_fiber = nullptr;
#ifdef NOWCLUSTER_ASAN_FIBERS
    // This stack is dead after the uc_link switch: fake_stack_save of
    // nullptr tells ASan to release its shadow.
    __sanitizer_start_switch_fiber(nullptr, self->asanReturnStack_,
                                   self->asanReturnSize_);
#endif
#ifdef NOWCLUSTER_TSAN_FIBERS
    __tsan_switch_to_fiber(self->tsanReturn_, 0);
#endif
    // Exit with an explicit swapcontext rather than returning into the
    // uc_link setcontext: libtsan intercepts swapcontext but not the
    // uc_link path, and a __tsan_switch_to_fiber left unpaired with an
    // intercepted switch corrupts TSan's shadow stack (observed as
    // delayed SEGVs inside the runtime under GCC 12). uc_link stays
    // set as a backstop; this swap never returns.
    swapcontext(&self->context_, &self->returnContext_);
}

void
Fiber::resume()
{
    panic_if(current_fiber != nullptr,
             "Fiber::resume called from inside a fiber");
    panic_if(finished_, "resuming a finished fiber");
    current_fiber = this;
    if (!started_) {
        started_ = true;
        starting_fiber = this;
    }
#ifdef NOWCLUSTER_ASAN_FIBERS
    __sanitizer_start_switch_fiber(&asanMainFake_, stack_, stackSize_);
#endif
#ifdef NOWCLUSTER_TSAN_FIBERS
    tsanReturn_ = __tsan_get_current_fiber();
    __tsan_switch_to_fiber(tsanFiber_, 0);
#endif
    if (swapcontext(&returnContext_, &context_) != 0)
        panic("swapcontext into fiber failed");
#ifdef NOWCLUSTER_ASAN_FIBERS
    __sanitizer_finish_switch_fiber(asanMainFake_, nullptr, nullptr);
#endif
    // We only get back here after the fiber yields or finishes.
    current_fiber = nullptr;
}

void
Fiber::yield()
{
    Fiber *self = current_fiber;
    panic_if(self == nullptr, "Fiber::yield called outside a fiber");
    current_fiber = nullptr;
#ifdef NOWCLUSTER_ASAN_FIBERS
    __sanitizer_start_switch_fiber(&self->asanFiberFake_,
                                   self->asanReturnStack_,
                                   self->asanReturnSize_);
#endif
#ifdef NOWCLUSTER_TSAN_FIBERS
    __tsan_switch_to_fiber(self->tsanReturn_, 0);
#endif
    if (swapcontext(&self->context_, &self->returnContext_) != 0)
        panic("swapcontext out of fiber failed");
#ifdef NOWCLUSTER_ASAN_FIBERS
    __sanitizer_finish_switch_fiber(self->asanFiberFake_,
                                    &self->asanReturnStack_,
                                    &self->asanReturnSize_);
#endif
    current_fiber = self;
}

Fiber *
Fiber::current()
{
    return current_fiber;
}

} // namespace nowcluster
