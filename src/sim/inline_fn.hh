/**
 * @file
 * InlineFn: a move-only, small-buffer-only callable for the event loop.
 *
 * Every simulated event used to carry a std::function<void()>, whose
 * small-object buffer (16 bytes in libstdc++) is smaller than almost
 * every closure the simulator schedules, so each event paid a heap
 * allocation. InlineFn stores the closure inline in a 64-byte buffer
 * and refuses (at compile time) anything larger: the event loop can
 * never silently regress back to malloc-per-event. Larger state must be
 * boxed explicitly (e.g. the shared_ptr<Packet> in Cluster's delivery
 * path), which keeps the cost visible at the call site.
 */

#ifndef NOWCLUSTER_SIM_INLINE_FN_HH_
#define NOWCLUSTER_SIM_INLINE_FN_HH_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace nowcluster {

/** Move-only void() callable with guaranteed-inline closure storage. */
class InlineFn
{
  public:
    /** Closure capacity; fits every event lambda in the simulator. */
    static constexpr std::size_t kCapacity = 64;

    InlineFn() noexcept = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineFn>>>
    InlineFn(F &&f) // NOLINT: implicit, like std::function
    {
        using Fn = std::decay_t<F>;
        static_assert(sizeof(Fn) <= kCapacity,
                      "event closure too large for InlineFn; shrink the "
                      "capture or box it (shared_ptr) explicitly");
        static_assert(alignof(Fn) <= alignof(std::max_align_t),
                      "over-aligned event closure");
        static_assert(std::is_invocable_r_v<void, Fn &>,
                      "InlineFn requires a void() callable");
        ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(f));
        ops_ = &opsFor<Fn>;
    }

    InlineFn(InlineFn &&other) noexcept : ops_(other.ops_)
    {
        if (ops_) {
            ops_->relocate(buf_, other.buf_);
            other.ops_ = nullptr;
        }
    }

    InlineFn &
    operator=(InlineFn &&other) noexcept
    {
        if (this != &other) {
            reset();
            ops_ = other.ops_;
            if (ops_) {
                ops_->relocate(buf_, other.buf_);
                other.ops_ = nullptr;
            }
        }
        return *this;
    }

    InlineFn(const InlineFn &) = delete;
    InlineFn &operator=(const InlineFn &) = delete;

    ~InlineFn() { reset(); }

    /** Invoke the stored callable. @pre bool(*this) */
    void operator()() { ops_->invoke(buf_); }

    explicit operator bool() const noexcept { return ops_ != nullptr; }

    /** Destroy the stored callable, leaving the InlineFn empty. */
    void
    reset() noexcept
    {
        if (ops_) {
            ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

  private:
    struct Ops
    {
        void (*invoke)(void *);
        /** Move-construct dst from src, then destroy src. */
        void (*relocate)(void *dst, void *src) noexcept;
        void (*destroy)(void *) noexcept;
    };

    template <typename Fn>
    static constexpr Ops opsFor = {
        [](void *p) { (*static_cast<Fn *>(p))(); },
        [](void *dst, void *src) noexcept {
            auto *s = static_cast<Fn *>(src);
            ::new (dst) Fn(std::move(*s));
            s->~Fn();
        },
        [](void *p) noexcept { static_cast<Fn *>(p)->~Fn(); },
    };

    alignas(std::max_align_t) unsigned char buf_[kCapacity];
    const Ops *ops_ = nullptr;
};

} // namespace nowcluster

#endif // NOWCLUSTER_SIM_INLINE_FN_HH_
