#include "obs/critpath.hh"

#include <algorithm>
#include <cstdio>
#include <map>
#include <unordered_map>
#include <vector>

namespace nowcluster {

namespace {

/** Per-node timeline index built once per analysis. */
struct Timeline
{
    /** Leaf CPU spans sorted by end time. */
    std::vector<const Span *> cpu;
    /** Container spans sorted by begin time. */
    std::vector<const Span *> containers;
};

/** Attribute an unexplained wait [a, b) on `node`: charge it to the
 *  innermost container span covering it, else to waitOther. */
void
labelGap(CritPathReport &r, const Timeline &tl, Tick a, Tick b)
{
    if (b <= a)
        return;
    const Span *best = nullptr;
    for (const Span *c : tl.containers) {
        if (c->begin > a)
            break;
        if (c->end >= b &&
            (!best || c->begin >= best->begin))
            best = c;
    }
    if (best)
        r.perCat[static_cast<int>(best->cat)] += b - a;
    else
        r.waitOther += b - a;
}

} // namespace

CritPathReport
analyzeCriticalPath(const SpanTracer &tracer)
{
    CritPathReport r;

    // Degenerate traces -- nothing recorded at all, or a run so small
    // it produced no message edges -- must come back ok=false or as a
    // pure-compute path, never touch msg lookups, and never underflow
    // the backward walk. The guards below are exercised directly by
    // the regression tests in tests/test_obs.cc.
    if (tracer.spans().empty())
        return r;

    std::map<NodeId, Timeline> timelines;
    for (const Span &s : tracer.spans()) {
        if (s.container)
            timelines[s.node].containers.push_back(&s);
        else if (s.track == TrackKind::Cpu && s.end > s.begin)
            timelines[s.node].cpu.push_back(&s);
    }
    for (auto &[node, tl] : timelines) {
        std::sort(tl.cpu.begin(), tl.cpu.end(),
                  [](const Span *a, const Span *b) {
                      return a->end != b->end ? a->end < b->end
                                              : a->begin < b->begin;
                  });
        std::sort(tl.containers.begin(), tl.containers.end(),
                  [](const Span *a, const Span *b) {
                      return a->begin < b->begin;
                  });
    }

    std::unordered_map<std::uint64_t, const ObsMessage *> msgById;
    msgById.reserve(tracer.messages().size());
    for (const ObsMessage &m : tracer.messages())
        msgById.emplace(m.id, &m);

    // Start from the globally last-ending CPU span.
    NodeId node = -1;
    Tick cursor = 0;
    for (const auto &[n, tl] : timelines) {
        if (!tl.cpu.empty() && tl.cpu.back()->end > cursor) {
            cursor = tl.cpu.back()->end;
            node = n;
        }
    }
    if (node < 0)
        return r;
    r.endTick = cursor;
    r.ok = true;

    // Each step either consumes one span or hops one message, so the
    // walk is bounded; the guard only protects against malformed input
    // (e.g., a hand-edited binary trace with a timestamp cycle).
    std::size_t guard =
        tracer.spans().size() + tracer.messages().size() + 16;

    while (cursor > 0 && guard-- > 0) {
        // find(), not operator[]: a message hop can land on a node
        // that recorded no CPU spans (a sender filtered out of a
        // partial trace), and the walk must not grow the map while
        // standing on references into it.
        auto tli = timelines.find(node);
        if (tli == timelines.end())
            break;
        const Timeline &tl = tli->second;
        // Last CPU span ending at or before the cursor.
        auto it = std::upper_bound(
            tl.cpu.begin(), tl.cpu.end(), cursor,
            [](Tick t, const Span *s) { return t < s->end; });
        if (it == tl.cpu.begin()) {
            // Nothing earlier on this node: idle back to t=0.
            labelGap(r, tl, 0, cursor);
            break;
        }
        const Span *s = *(it - 1);
        labelGap(r, tl, s->end, cursor);
        r.perCat[static_cast<int>(s->cat)] += s->end - s->begin;
        ++r.segments;
        if (s->cat == SpanCat::OSend)
            ++r.oSendSpans;

        const Tick prevEnd =
            it - 1 == tl.cpu.begin() ? 0 : (*(it - 2))->end;

        if (s->cat == SpanCat::ORecv) {
            ++r.oRecvSpans;
            auto mi = s->msg ? msgById.find(s->msg) : msgById.end();
            // The arrival was binding iff the presence bit was set at
            // or after the previous local span finished -- the CPU was
            // waiting on the wire, so the path hops to the sender.
            if (mi != msgById.end() && mi->second->ready >= prevEnd &&
                mi->second->issued < cursor) {
                const ObsMessage &m = *mi->second;
                labelGap(r, tl, m.ready, s->begin);
                r.perCat[static_cast<int>(SpanCat::LWire)] +=
                    m.wireLatency;
                if (m.wire > m.inject)
                    r.perCat[static_cast<int>(SpanCat::GStall)] +=
                        m.wire - m.inject;
                if (m.inject > m.issued)
                    r.perCat[static_cast<int>(SpanCat::GapStall)] +=
                        m.inject - m.issued;
                ++r.lCrossings;
                node = m.src;
                cursor = m.issued;
                continue;
            }
        }
        cursor = s->begin;
    }
    return r;
}

std::string
CritPathReport::render() const
{
    std::string out;
    char buf[160];
    if (!ok)
        return "critical path: no CPU spans recorded\n";
    std::snprintf(buf, sizeof(buf),
                  "critical path: %.3f us end-to-end, %llu segments, "
                  "%llu wire crossings\n",
                  static_cast<double>(endTick) / 1e3,
                  static_cast<unsigned long long>(segments),
                  static_cast<unsigned long long>(lCrossings));
    out += buf;
    Tick attributed = waitOther;
    for (int c = 0; c < kNumSpanCats; ++c)
        attributed += perCat[c];
    const double denom =
        attributed > 0 ? static_cast<double>(attributed) : 1.0;
    for (int c = 0; c < kNumSpanCats; ++c) {
        std::snprintf(buf, sizeof(buf), "  %-14s %12.3f us  %5.1f%%\n",
                      spanCatName(static_cast<SpanCat>(c)),
                      static_cast<double>(perCat[c]) / 1e3,
                      100.0 * static_cast<double>(perCat[c]) / denom);
        out += buf;
    }
    std::snprintf(buf, sizeof(buf), "  %-14s %12.3f us  %5.1f%%\n",
                  "other-wait", static_cast<double>(waitOther) / 1e3,
                  100.0 * static_cast<double>(waitOther) / denom);
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "predicted sensitivity: dT/dL ~= %.0f crossings, "
                  "dT/do ~= %.0f overhead spans (%llu send + %llu recv)\n",
                  predictedDTdL(), predictedDTdO(),
                  static_cast<unsigned long long>(oSendSpans),
                  static_cast<unsigned long long>(oRecvSpans));
    out += buf;
    return out;
}

} // namespace nowcluster
