/**
 * @file
 * The perturbation-wavefront analyzer: given a baseline trace and a
 * trace of the same run with a one-off delay injected on one node,
 * diff the two per-node CPU timelines to measure how the disturbance
 * propagates through the cluster and where it dies out.
 *
 * The observable is *excess idle*: E_n(t) = idle_pert(t) - idle_base(t)
 * on node n's CPU track, a piecewise-linear function whose slope is
 * +1 where the perturbed node sits idle while the baseline was
 * computing. A node is "reached" when E_n crosses a threshold fraction
 * of the injected delay; the crossing time is the wavefront's arrival.
 * Fitting arrival time against message-graph hop distance from the
 * delayed node gives a propagation speed (hops/ms), and the farthest
 * reached hop is the decay distance -- the pair of numbers the delay
 * propagation literature (Afzal et al.) characterizes clusters by.
 */

#ifndef NOWCLUSTER_OBS_WAVEFRONT_HH_
#define NOWCLUSTER_OBS_WAVEFRONT_HH_

#include <string>
#include <vector>

#include "base/types.hh"
#include "obs/tracer.hh"

namespace nowcluster {

/** What was injected, and when a node counts as reached. */
struct WavefrontConfig
{
    NodeId delayedNode = 0; ///< Node that received the one-off stall.
    Tick delayAt = 0;       ///< Stall start (virtual time).
    Tick delayDuration = 0; ///< Stall length.
    /** A node is reached when its excess idle exceeds this fraction of
     *  the injected delay. */
    double threshold = 0.05;
};

/** Per-node wavefront measurement. */
struct NodeWave
{
    NodeId node = -1;
    /** Message-graph hop distance from the delayed node (BFS over the
     *  baseline trace's src->dst message edges; -1 = unreachable). */
    int hops = -1;
    /** First virtual time the excess idle crossed the threshold
     *  (-1 = the wavefront never arrived here). */
    Tick arrival = -1;
    /** Peak excess idle over the run -- the node's share of the
     *  damage. (Excess idle returns to ~0 by run end: both runs do the
     *  same total work, so only the peak shows the wave's height.) */
    Tick excessIdle = 0;
};

/** The analyzer's verdict on one baseline/perturbed trace pair. */
struct WavefrontReport
{
    WavefrontConfig config;
    std::vector<NodeWave> nodes; ///< Indexed by node id.
    int reached = 0;       ///< Nodes whose excess idle crossed threshold.
    int decayHops = -1;    ///< Farthest reached hop (-1 = none reached).
    double speedHopsPerMs = 0; ///< Least-squares hops-vs-arrival slope.
    bool speedFinite = false;  ///< >= 2 distinct arrivals to fit.
    Tick excessRuntime = 0;    ///< Perturbed end minus baseline end.

    /** Human-readable table (byte-stable for determinism checks). */
    std::string render() const;
};

/**
 * Diff a perturbed trace against its baseline. Both traces must come
 * from the same (app, nprocs, seed, knobs) run, differing only in the
 * injected delay; nodes are 0..nprocs-1.
 */
WavefrontReport analyzeWavefront(const SpanTracer &baseline,
                                 const SpanTracer &perturbed, int nprocs,
                                 const WavefrontConfig &config);

/**
 * Synthesize SpanCat::IdleWave spans into `out`: for each node, the
 * intervals where the perturbed run sat idle while the baseline was
 * busy -- exactly where excess idle accrues, i.e. the visible shape of
 * the wave. Typically `out` has already absorb()ed the perturbed trace
 * so the wave renders on top of the real timeline.
 */
void exportIdleWave(const SpanTracer &baseline,
                    const SpanTracer &perturbed, int nprocs,
                    SpanTracer &out);

} // namespace nowcluster

#endif // NOWCLUSTER_OBS_WAVEFRONT_HH_
