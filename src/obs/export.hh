/**
 * @file
 * Trace exporters: Chrome/Perfetto trace_event JSON for the `chrome://
 * tracing` / ui.perfetto.dev timeline view, and a compact binary format
 * that round-trips losslessly (the form `nowlab replay --obs` loads).
 *
 * Perfetto mapping: pid = node id (named "node N"), tid = track kind
 * (named "cpu" / "nic-tx" / "nic-rx"), complete events ("ph":"X") with
 * microsecond ts/dur from nanosecond ticks, flow events ("s"/"f")
 * linking a message's o_send span to its o_recv span, and instant
 * events ("i") for retransmissions. See docs/INTERNALS.md for the
 * byte-level layout of the binary format.
 */

#ifndef NOWCLUSTER_OBS_EXPORT_HH_
#define NOWCLUSTER_OBS_EXPORT_HH_

#include <string>

#include "obs/tracer.hh"

namespace nowcluster {

/** Render the Perfetto trace_event JSON document. */
std::string perfettoJson(const SpanTracer &tracer);

/** Write perfettoJson() to a file. */
bool writePerfettoJson(const SpanTracer &tracer, const std::string &path);

/** Write the compact binary form (magic "NOWOBS01"). */
bool writeBinaryTrace(const SpanTracer &tracer, const std::string &path);

/** Load a writeBinaryTrace() file, replacing `tracer`'s contents.
 *  Returns false (tracer cleared) on missing/corrupt input. */
bool readBinaryTrace(SpanTracer &tracer, const std::string &path);

} // namespace nowcluster

#endif // NOWCLUSTER_OBS_EXPORT_HH_
