#include "obs/metrics.hh"

#include <algorithm>
#include <cstdio>

#include "base/logging.hh"

namespace nowcluster {

Histogram::Histogram(std::vector<Tick> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1, 0)
{
    panic_if(!std::is_sorted(bounds_.begin(), bounds_.end()),
             "histogram bounds must be ascending");
}

void
Histogram::observe(Tick v)
{
    auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
    ++buckets_[static_cast<std::size_t>(it - bounds_.begin())];
    ++count_;
    sum_ += v;
}

void
Histogram::mergeFrom(const Histogram &other)
{
    panic_if(other.bounds_ != bounds_,
             "merging histograms with different bucket bounds");
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
    count_ += other.count_;
    sum_ += other.sum_;
}

bool
Histogram::restore(const std::vector<std::uint64_t> &buckets,
                   std::uint64_t count, Tick sum)
{
    if (buckets.size() != bounds_.size() + 1)
        return false;
    std::uint64_t total = 0;
    for (std::uint64_t b : buckets)
        total += b;
    if (total != count)
        return false;
    buckets_ = buckets;
    count_ = count;
    sum_ = sum;
    return true;
}

void
MetricsSnapshot::mergeFrom(const MetricsSnapshot &other)
{
    for (const auto &[name, v] : other.counters)
        counters[name] += v;
    for (const auto &[name, v] : other.gauges)
        gauges[name] += v;
    for (const auto &[name, h] : other.histograms) {
        auto it = histograms.find(name);
        if (it == histograms.end())
            histograms.emplace(name, h);
        else
            it->second.mergeFrom(h);
    }
}

std::uint64_t
MetricsSnapshot::counterOr(const std::string &name,
                           std::uint64_t fallback) const
{
    auto it = counters.find(name);
    return it == counters.end() ? fallback : it->second;
}

std::string
MetricsSnapshot::render() const
{
    std::string out;
    char buf[192];
    for (const auto &[name, v] : counters) {
        std::snprintf(buf, sizeof(buf), "%-28s %llu\n", name.c_str(),
                      static_cast<unsigned long long>(v));
        out += buf;
    }
    for (const auto &[name, v] : gauges) {
        std::snprintf(buf, sizeof(buf), "%-28s %.6g\n", name.c_str(), v);
        out += buf;
    }
    for (const auto &[name, h] : histograms) {
        std::snprintf(buf, sizeof(buf), "%-28s n=%llu sum=%lld [",
                      name.c_str(),
                      static_cast<unsigned long long>(h.count()),
                      static_cast<long long>(h.sum()));
        out += buf;
        for (std::size_t i = 0; i < h.buckets().size(); ++i) {
            std::snprintf(buf, sizeof(buf), "%s%llu", i ? " " : "",
                          static_cast<unsigned long long>(
                              h.buckets()[i]));
            out += buf;
        }
        out += "]\n";
    }
    return out;
}

std::uint64_t &
MetricsRegistry::counter(const std::string &name)
{
    auto it = counterIndex_.find(name);
    if (it != counterIndex_.end())
        return counters_[it->second].second;
    counterIndex_.emplace(name, counters_.size());
    counters_.emplace_back(name, 0);
    return counters_.back().second;
}

double &
MetricsRegistry::gauge(const std::string &name)
{
    auto it = gaugeIndex_.find(name);
    if (it != gaugeIndex_.end())
        return gauges_[it->second].second;
    gaugeIndex_.emplace(name, gauges_.size());
    gauges_.emplace_back(name, 0.0);
    return gauges_.back().second;
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           std::vector<Tick> bounds)
{
    auto it = histogramIndex_.find(name);
    if (it != histogramIndex_.end()) {
        Histogram &h = histograms_[it->second].second;
        panic_if(h.bounds() != bounds,
                 "histogram '%s' re-registered with different bounds",
                 name.c_str());
        return h;
    }
    histogramIndex_.emplace(name, histograms_.size());
    histograms_.emplace_back(name, Histogram(std::move(bounds)));
    return histograms_.back().second;
}

void
MetricsRegistry::probe(const std::string &name, const std::uint64_t *src)
{
    probesU64_.emplace_back(name, src);
}

void
MetricsRegistry::probe(const std::string &name, const Tick *src)
{
    probesTick_.emplace_back(name, src);
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot s;
    for (const auto &[name, v] : counters_)
        s.counters[name] += v;
    for (const auto &[name, src] : probesU64_)
        s.counters[name] += *src;
    for (const auto &[name, src] : probesTick_)
        s.counters[name] += static_cast<std::uint64_t>(*src);
    for (const auto &[name, v] : gauges_)
        s.gauges[name] += v;
    for (const auto &[name, h] : histograms_) {
        auto it = s.histograms.find(name);
        if (it == s.histograms.end())
            s.histograms.emplace(name, h);
        else
            it->second.mergeFrom(h);
    }
    return s;
}

MetricsSnapshot
mergeSnapshots(const std::vector<MetricsSnapshot> &parts)
{
    MetricsSnapshot out;
    for (const MetricsSnapshot &p : parts)
        out.mergeFrom(p);
    return out;
}

} // namespace nowcluster
