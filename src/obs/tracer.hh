/**
 * @file
 * The span tracer: per-track timelines of categorized virtual-time
 * spans, plus one record per message with its LogGP decomposition.
 *
 * Every simulated node owns three tracks -- the CPU fiber, the NIC
 * transmit context, and the NIC receive context -- and instrumented
 * components append spans to them as virtual time unfolds. Recording is
 * strictly passive: a span is two timestamps that the simulation was
 * going to produce anyway, so an attached tracer never perturbs virtual
 * time and a detached one costs a single predicted-not-taken branch
 * (all record paths are inlined here and guarded by a null check; see
 * bench_engine_micro's BM_AmRoundTrip / BM_AmRoundTripTraced A/B).
 *
 * The recorded data feeds three consumers (src/obs/export.hh and
 * src/obs/critpath.hh): the Chrome/Perfetto trace_event exporter, the
 * compact binary format `nowlab replay --obs` can load, and the LogGP
 * critical-path analyzer.
 */

#ifndef NOWCLUSTER_OBS_TRACER_HH_
#define NOWCLUSTER_OBS_TRACER_HH_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/types.hh"

namespace nowcluster {

/** What a span of virtual time was spent on (the LogGP vocabulary). */
enum class SpanCat : std::uint8_t
{
    Compute,     ///< Application work charged via compute().
    OSend,       ///< Host send overhead (o_send).
    ORecv,       ///< Host receive overhead (o_recv).
    LWire,       ///< Wire + interface latency (L), on the rx track.
    GapStall,    ///< g back-pressure: tx-queue / credit / rx-occupancy.
    GStall,      ///< Bulk DMA transfer time (size * G).
    Retransmit,  ///< Reliability-protocol retransmission (instant).
    BarrierWait, ///< Waiting inside a barrier round.
    IdleWave,    ///< Wavefront analyzer: excess idle vs the baseline.
};

constexpr int kNumSpanCats = 9;

/** Timeline a span belongs to; each node has one of each. */
enum class TrackKind : std::uint8_t
{
    Cpu,   ///< The node's processor fiber.
    NicTx, ///< The NIC transmit context.
    NicRx, ///< The NIC receive context / delay queue.
};

constexpr int kNumTrackKinds = 3;

/** One categorized interval of virtual time on one track. */
struct Span
{
    Tick begin = 0;
    Tick end = 0;
    NodeId node = -1;
    TrackKind track = TrackKind::Cpu;
    SpanCat cat = SpanCat::Compute;
    /**
     * Container spans (barrier-wait, credit-wait) cover an interval in
     * which nested leaf spans (polling, handler work) also appear; the
     * critical-path walk skips them and uses them only to label
     * otherwise-unattributed waiting.
     */
    bool container = false;
    /** Message this span serves (0 = none). */
    std::uint64_t msg = 0;
};

/**
 * One message's flight, decomposed into the LogGP terms the NIC
 * timestamp algebra produced:
 *
 *   issued --(queue wait: g)--> inject --(size*G)--> wire --(L)--> ready
 */
struct ObsMessage
{
    std::uint64_t id = 0;
    NodeId src = -1;
    NodeId dst = -1;
    Tick issued = 0; ///< Host offered the descriptor (after o_send).
    Tick inject = 0; ///< Tx context began injecting.
    Tick wire = 0;   ///< Payload fully left the NIC.
    Tick ready = 0;  ///< Presence bit at the receiver.
    Tick wireLatency = 0; ///< The L term (latency + addedL).
    std::uint8_t kind = 0; ///< PacketKind as an integer.
    bool retx = false;
    std::uint32_t bytes = 0;
};

/** Human-readable category / track names (used by the exporters). */
const char *spanCatName(SpanCat cat);
const char *trackKindName(TrackKind track);

/**
 * The trace sink. One per traced run; single-threaded like the
 * simulation heap that feeds it (the parallel runner gives each point
 * its own tracer, and the sharded cluster engine gives each *shard* a
 * private tracer with a disjoint id range, absorb()ed into the user's
 * tracer in shard order once the run completes).
 */
class SpanTracer
{
  public:
    /** Record a leaf span. Zero-length spans are kept only for the
     *  Retransmit category (exported as instant events). */
    void
    span(NodeId node, TrackKind track, SpanCat cat, Tick begin, Tick end,
         std::uint64_t msg = 0)
    {
        if (end <= begin && cat != SpanCat::Retransmit)
            return;
        spans_.push_back({begin, end, node, track, cat, false, msg});
    }

    /** Record a container span (see Span::container). */
    void
    containerSpan(NodeId node, SpanCat cat, Tick begin, Tick end)
    {
        if (end <= begin)
            return;
        spans_.push_back(
            {begin, end, node, TrackKind::Cpu, cat, true, 0});
    }

    /** Allocate a message id (> 0). */
    std::uint64_t newMsgId() { return ++lastMsgId_; }

    /**
     * Start the id allocator at `base` so several tracers can allocate
     * disjoint ids. The sharded cluster engine gives each shard tracer
     * base = shard << 40 and absorb()s them after the run.
     */
    void seedMsgIds(std::uint64_t base) { lastMsgId_ = base; }

    /** Record one message's flight decomposition. */
    void
    message(const ObsMessage &m)
    {
        msgIndex_.emplace(m.id, msgs_.size());
        msgs_.push_back(m);
    }

    /** Refine a message's presence-bit time (fabric contention, fault
     *  delay, retransmission all move it after the send recorded it). */
    void
    updateMessageReady(std::uint64_t id, Tick ready)
    {
        auto it = msgIndex_.find(id);
        if (it != msgIndex_.end()) {
            msgs_[it->second].ready = ready;
            return;
        }
        // Shard tracers see updates for messages another shard
        // recorded; park them for the post-run merge.
        if (collectPending_)
            pending_.push_back({id, ready});
    }

    /**
     * Collect unknown-id updateMessageReady() calls in pendingReady()
     * instead of dropping them (on for per-shard tracers, whose
     * messages live in the sender's tracer).
     */
    void collectPendingReady(bool on) { collectPending_ = on; }
    const std::vector<std::pair<std::uint64_t, Tick>> &
    pendingReady() const
    {
        return pending_;
    }

    /** Append another tracer's spans and messages (post-run shard
     *  merge; call in a fixed shard order for determinism). */
    void absorb(const SpanTracer &other);

    const std::vector<Span> &spans() const { return spans_; }
    const std::vector<ObsMessage> &messages() const { return msgs_; }

    /** Largest end timestamp over all spans (0 if empty). */
    Tick
    lastTick() const
    {
        Tick t = 0;
        for (const Span &s : spans_)
            t = s.end > t ? s.end : t;
        return t;
    }

    void
    clear()
    {
        spans_.clear();
        msgs_.clear();
        msgIndex_.clear();
        pending_.clear();
        lastMsgId_ = 0;
    }

  private:
    friend bool readBinaryTrace(SpanTracer &, const std::string &);

    std::vector<Span> spans_;
    std::vector<ObsMessage> msgs_;
    std::unordered_map<std::uint64_t, std::size_t> msgIndex_;
    std::vector<std::pair<std::uint64_t, Tick>> pending_;
    std::uint64_t lastMsgId_ = 0;
    bool collectPending_ = false;
};

} // namespace nowcluster

#endif // NOWCLUSTER_OBS_TRACER_HH_
