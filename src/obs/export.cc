#include "obs/export.hh"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <set>

namespace nowcluster {

namespace {

void
appendEvent(std::string &out, bool &first, const char *json)
{
    if (!first)
        out += ",\n";
    first = false;
    out += json;
}

/** ts/dur in microseconds with ns precision (ticks are ns). */
std::string
us(Tick t)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(t) / 1e3);
    return buf;
}

} // namespace

std::string
perfettoJson(const SpanTracer &tracer)
{
    std::string out = "{\"traceEvents\":[\n";
    bool first = true;
    char buf[512];

    // Metadata: name each (pid, tid) so the timeline reads
    // "node N / cpu|nic-tx|nic-rx". Tracks are emitted for every
    // node that has at least one span.
    std::set<NodeId> nodes;
    for (const Span &s : tracer.spans())
        nodes.insert(s.node);
    for (NodeId n : nodes) {
        std::snprintf(buf, sizeof(buf),
                      "{\"ph\":\"M\",\"pid\":%d,\"tid\":0,"
                      "\"name\":\"process_name\","
                      "\"args\":{\"name\":\"node %d\"}}",
                      n, n);
        appendEvent(out, first, buf);
        std::snprintf(buf, sizeof(buf),
                      "{\"ph\":\"M\",\"pid\":%d,\"tid\":0,"
                      "\"name\":\"process_sort_index\","
                      "\"args\":{\"sort_index\":%d}}",
                      n, n);
        appendEvent(out, first, buf);
        for (int k = 0; k < kNumTrackKinds; ++k) {
            std::snprintf(buf, sizeof(buf),
                          "{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,"
                          "\"name\":\"thread_name\","
                          "\"args\":{\"name\":\"%s\"}}",
                          n, k,
                          trackKindName(static_cast<TrackKind>(k)));
            appendEvent(out, first, buf);
        }
    }

    for (const Span &s : tracer.spans()) {
        int tid = static_cast<int>(s.track);
        // Clamp degenerate records: SpanTracer::span() never stores
        // end < begin, but readBinaryTrace() trusts the file, and a
        // negative "dur" makes a trace_event viewer reject the whole
        // document. Clamped spans render as instant events.
        const Tick end = s.end < s.begin ? s.begin : s.end;
        if (end == s.begin) {
            // Zero-duration record (retransmit) -> instant event.
            std::snprintf(buf, sizeof(buf),
                          "{\"ph\":\"i\",\"pid\":%d,\"tid\":%d,"
                          "\"ts\":%s,\"s\":\"t\",\"name\":\"%s\","
                          "\"cat\":\"%s\"}",
                          s.node, tid, us(s.begin).c_str(),
                          spanCatName(s.cat), spanCatName(s.cat));
            appendEvent(out, first, buf);
            continue;
        }
        if (s.msg) {
            std::snprintf(buf, sizeof(buf),
                          "{\"ph\":\"X\",\"pid\":%d,\"tid\":%d,"
                          "\"ts\":%s,\"dur\":%s,\"name\":\"%s\","
                          "\"cat\":\"%s\",\"args\":{\"msg\":%llu}}",
                          s.node, tid, us(s.begin).c_str(),
                          us(end - s.begin).c_str(),
                          spanCatName(s.cat), spanCatName(s.cat),
                          static_cast<unsigned long long>(s.msg));
        } else {
            std::snprintf(buf, sizeof(buf),
                          "{\"ph\":\"X\",\"pid\":%d,\"tid\":%d,"
                          "\"ts\":%s,\"dur\":%s,\"name\":\"%s\","
                          "\"cat\":\"%s%s\"}",
                          s.node, tid, us(s.begin).c_str(),
                          us(end - s.begin).c_str(),
                          spanCatName(s.cat), spanCatName(s.cat),
                          s.container ? ",container" : "");
        }
        appendEvent(out, first, buf);
    }

    // Flow arrows: message injection on the source tx track to
    // presence-bit time on the destination rx track.
    for (const ObsMessage &m : tracer.messages()) {
        std::snprintf(buf, sizeof(buf),
                      "{\"ph\":\"s\",\"pid\":%d,\"tid\":%d,"
                      "\"ts\":%s,\"id\":%llu,\"name\":\"msg\","
                      "\"cat\":\"flow\"}",
                      m.src, static_cast<int>(TrackKind::NicTx),
                      us(m.inject).c_str(),
                      static_cast<unsigned long long>(m.id));
        appendEvent(out, first, buf);
        std::snprintf(buf, sizeof(buf),
                      "{\"ph\":\"f\",\"pid\":%d,\"tid\":%d,"
                      "\"ts\":%s,\"id\":%llu,\"name\":\"msg\","
                      "\"cat\":\"flow\",\"bp\":\"e\"}",
                      m.dst, static_cast<int>(TrackKind::NicRx),
                      us(m.ready).c_str(),
                      static_cast<unsigned long long>(m.id));
        appendEvent(out, first, buf);
    }

    out += "\n],\"displayTimeUnit\":\"ns\"}\n";
    return out;
}

bool
writePerfettoJson(const SpanTracer &tracer, const std::string &path)
{
    std::ofstream f(path, std::ios::binary);
    if (!f)
        return false;
    const std::string doc = perfettoJson(tracer);
    f.write(doc.data(), static_cast<std::streamsize>(doc.size()));
    return f.good();
}

namespace {

constexpr char kMagic[8] = {'N', 'O', 'W', 'O', 'B', 'S', '0', '1'};

template <typename T>
void
put(std::string &out, T v)
{
    // Little-endian, field by field: the layout is explicit, not
    // a struct memcpy, so it is stable across compilers.
    for (std::size_t i = 0; i < sizeof(T); ++i)
        out.push_back(static_cast<char>(
            (static_cast<std::uint64_t>(v) >> (8 * i)) & 0xff));
}

template <typename T>
bool
get(const std::string &in, std::size_t &pos, T &v)
{
    if (pos + sizeof(T) > in.size())
        return false;
    std::uint64_t raw = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i)
        raw |= static_cast<std::uint64_t>(
                   static_cast<unsigned char>(in[pos + i]))
               << (8 * i);
    v = static_cast<T>(raw);
    pos += sizeof(T);
    return true;
}

} // namespace

bool
writeBinaryTrace(const SpanTracer &tracer, const std::string &path)
{
    std::string out;
    out.append(kMagic, sizeof(kMagic));
    put<std::uint64_t>(out, tracer.spans().size());
    put<std::uint64_t>(out, tracer.messages().size());
    for (const Span &s : tracer.spans()) {
        put<std::int64_t>(out, s.begin);
        put<std::int64_t>(out, s.end);
        put<std::int32_t>(out, s.node);
        put<std::uint8_t>(out, static_cast<std::uint8_t>(s.track));
        put<std::uint8_t>(out, static_cast<std::uint8_t>(s.cat));
        put<std::uint8_t>(out, s.container ? 1 : 0);
        put<std::uint64_t>(out, s.msg);
    }
    for (const ObsMessage &m : tracer.messages()) {
        put<std::uint64_t>(out, m.id);
        put<std::int32_t>(out, m.src);
        put<std::int32_t>(out, m.dst);
        put<std::int64_t>(out, m.issued);
        put<std::int64_t>(out, m.inject);
        put<std::int64_t>(out, m.wire);
        put<std::int64_t>(out, m.ready);
        put<std::int64_t>(out, m.wireLatency);
        put<std::uint8_t>(out, m.kind);
        put<std::uint8_t>(out, m.retx ? 1 : 0);
        put<std::uint32_t>(out, m.bytes);
    }

    std::ofstream f(path, std::ios::binary);
    if (!f)
        return false;
    f.write(out.data(), static_cast<std::streamsize>(out.size()));
    return f.good();
}

bool
readBinaryTrace(SpanTracer &tracer, const std::string &path)
{
    tracer.clear();

    std::ifstream f(path, std::ios::binary);
    if (!f)
        return false;
    std::string in((std::istreambuf_iterator<char>(f)),
                   std::istreambuf_iterator<char>());

    std::size_t pos = 0;
    if (in.size() < sizeof(kMagic) ||
        std::memcmp(in.data(), kMagic, sizeof(kMagic)) != 0)
        return false;
    pos += sizeof(kMagic);

    std::uint64_t nspans = 0, nmsgs = 0;
    if (!get(in, pos, nspans) || !get(in, pos, nmsgs))
        return false;
    // Per-record sizes as written above; reject truncated files before
    // allocating anything.
    const std::size_t spanBytes = 8 + 8 + 4 + 1 + 1 + 1 + 8;
    const std::size_t msgBytes = 8 + 4 + 4 + 8 * 5 + 1 + 1 + 4;
    if (in.size() - pos != nspans * spanBytes + nmsgs * msgBytes)
        return false;

    std::uint64_t maxId = 0;
    tracer.spans_.reserve(nspans);
    for (std::uint64_t i = 0; i < nspans; ++i) {
        Span s;
        std::uint8_t track = 0, cat = 0, container = 0;
        if (!get(in, pos, s.begin) || !get(in, pos, s.end) ||
            !get(in, pos, s.node) || !get(in, pos, track) ||
            !get(in, pos, cat) || !get(in, pos, container) ||
            !get(in, pos, s.msg))
            return false;
        if (track >= kNumTrackKinds || cat >= kNumSpanCats) {
            tracer.clear();
            return false;
        }
        s.track = static_cast<TrackKind>(track);
        s.cat = static_cast<SpanCat>(cat);
        s.container = container != 0;
        tracer.spans_.push_back(s);
    }
    tracer.msgs_.reserve(nmsgs);
    for (std::uint64_t i = 0; i < nmsgs; ++i) {
        ObsMessage m;
        std::uint8_t retx = 0;
        if (!get(in, pos, m.id) || !get(in, pos, m.src) ||
            !get(in, pos, m.dst) || !get(in, pos, m.issued) ||
            !get(in, pos, m.inject) || !get(in, pos, m.wire) ||
            !get(in, pos, m.ready) || !get(in, pos, m.wireLatency) ||
            !get(in, pos, m.kind) || !get(in, pos, retx) ||
            !get(in, pos, m.bytes))
            return false;
        if (m.kind > 3) { // Largest PacketKind value (BulkFrag).
            tracer.clear();
            return false;
        }
        m.retx = retx != 0;
        maxId = m.id > maxId ? m.id : maxId;
        tracer.msgs_.push_back(m);
    }
    tracer.lastMsgId_ = maxId;
    return true;
}

} // namespace nowcluster
