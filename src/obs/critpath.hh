/**
 * @file
 * LogGP critical-path analysis over a recorded span trace.
 *
 * The analyzer walks backward from the last CPU activity in the run,
 * following the chain of binding constraints: while the processor was
 * the constraint it walks the node's own CPU timeline; when a receive
 * overhead span was bound by message arrival (the presence bit was set
 * at or after the previous local span ended), it hops the wire to the
 * sender and continues from the instant the message was issued. The
 * resulting path decomposes end-to-end time into the paper's LogGP
 * vocabulary (sum-of-L, sum-of-o, g stalls, G transfer, compute) plus
 * residual waiting labeled by the container span (barrier round,
 * credit stall) it occurred inside.
 *
 * The per-parameter sensitivity predictions fall out directly: each
 * wire crossing on the path contributes one L to total time, so
 * dT/dL ~= the number of crossings, and analogously dT/do ~= the number
 * of overhead spans on the path. tests/test_obs.cc cross-checks the
 * sign and app ordering of dT/dL against measured latency-sweep slopes
 * (the Figure 5 experiment).
 */

#ifndef NOWCLUSTER_OBS_CRITPATH_HH_
#define NOWCLUSTER_OBS_CRITPATH_HH_

#include <string>

#include "obs/tracer.hh"

namespace nowcluster {

/** The longest dependency path, decomposed into LogGP terms. */
struct CritPathReport
{
    /** End of the walk (last CPU activity in the run). */
    Tick endTick = 0;
    /** Virtual time attributed to each category along the path. */
    Tick perCat[kNumSpanCats] = {};
    /** Waiting not covered by any container span. */
    Tick waitOther = 0;
    /** Wire crossings on the path -- the predicted dT/dL. */
    std::uint64_t lCrossings = 0;
    /** Overhead spans on the path -- the predicted dT/do. */
    std::uint64_t oSendSpans = 0;
    std::uint64_t oRecvSpans = 0;
    /** CPU segments visited (path length in spans). */
    std::uint64_t segments = 0;
    bool ok = false;

    /** Ticks of extra end-to-end time per extra tick of L. */
    double predictedDTdL() const
    {
        return static_cast<double>(lCrossings);
    }
    /** Ticks of extra end-to-end time per extra tick of o. */
    double predictedDTdO() const
    {
        return static_cast<double>(oSendSpans + oRecvSpans);
    }

    std::string render() const;
};

/** Walk the message-dependency graph recorded in `tracer`. */
CritPathReport analyzeCriticalPath(const SpanTracer &tracer);

} // namespace nowcluster

#endif // NOWCLUSTER_OBS_CRITPATH_HH_
