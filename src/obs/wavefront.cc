#include "obs/wavefront.hh"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <utility>

namespace nowcluster {

namespace {

using Interval = std::pair<Tick, Tick>;

/**
 * Merged, sorted busy intervals of one node's CPU track. Leaf spans
 * only: container spans (barrier-wait, credit-wait) label waiting, and
 * synthesized IdleWave spans must not feed back into the diff.
 */
std::vector<Interval>
busyIntervals(const SpanTracer &tr, NodeId node)
{
    std::vector<Interval> iv;
    for (const Span &s : tr.spans()) {
        if (s.node != node || s.track != TrackKind::Cpu || s.container ||
            s.cat == SpanCat::IdleWave || s.end <= s.begin)
            continue;
        iv.push_back({s.begin, s.end});
    }
    std::sort(iv.begin(), iv.end());
    std::vector<Interval> merged;
    merged.reserve(iv.size());
    for (const Interval &w : iv) {
        if (!merged.empty() && w.first <= merged.back().second)
            merged.back().second =
                std::max(merged.back().second, w.second);
        else
            merged.push_back(w);
    }
    return merged;
}

/** All interval endpoints of both sets, sorted and deduplicated, with
 *  0 and `horizon` as sentinels. Between consecutive points each set is
 *  uniformly busy or idle, so the excess-idle slope is constant. */
std::vector<Tick>
breakpoints(const std::vector<Interval> &a, const std::vector<Interval> &b,
            Tick horizon)
{
    std::vector<Tick> pts;
    pts.reserve(2 * (a.size() + b.size()) + 2);
    pts.push_back(0);
    for (const Interval &w : a) {
        pts.push_back(w.first);
        pts.push_back(w.second);
    }
    for (const Interval &w : b) {
        pts.push_back(w.first);
        pts.push_back(w.second);
    }
    pts.push_back(horizon);
    std::sort(pts.begin(), pts.end());
    pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
    while (!pts.empty() && pts.back() > horizon)
        pts.pop_back();
    return pts;
}

/** True if the set is busy throughout (t, next breakpoint); the cursor
 *  index advances monotonically across a sweep. */
bool
busyAt(const std::vector<Interval> &iv, std::size_t &i, Tick t)
{
    while (i < iv.size() && iv[i].second <= t)
        ++i;
    return i < iv.size() && iv[i].first <= t;
}

/** Hop distances from `from` over the baseline's directed message
 *  edges (influence travels the same links the messages did). */
std::vector<int>
hopDistances(const SpanTracer &baseline, int nprocs, NodeId from)
{
    std::vector<std::vector<int>> adj(nprocs);
    for (const ObsMessage &m : baseline.messages())
        if (m.src >= 0 && m.src < nprocs && m.dst >= 0 && m.dst < nprocs)
            adj[m.src].push_back(m.dst);
    std::vector<int> hops(nprocs, -1);
    if (from < 0 || from >= nprocs)
        return hops;
    std::deque<NodeId> q;
    hops[from] = 0;
    q.push_back(from);
    while (!q.empty()) {
        NodeId n = q.front();
        q.pop_front();
        for (NodeId d : adj[n]) {
            if (hops[d] >= 0)
                continue;
            hops[d] = hops[n] + 1;
            q.push_back(d);
        }
    }
    return hops;
}

} // namespace

WavefrontReport
analyzeWavefront(const SpanTracer &baseline, const SpanTracer &perturbed,
                 int nprocs, const WavefrontConfig &config)
{
    WavefrontReport rep;
    rep.config = config;
    rep.nodes.resize(nprocs);
    rep.excessRuntime = perturbed.lastTick() - baseline.lastTick();

    Tick thr = static_cast<Tick>(config.threshold *
                                 static_cast<double>(config.delayDuration));
    if (thr <= 0)
        thr = 1;
    const Tick horizon =
        std::max(baseline.lastTick(), perturbed.lastTick());
    const std::vector<int> hops =
        hopDistances(baseline, nprocs, config.delayedNode);

    for (int n = 0; n < nprocs; ++n) {
        NodeWave &w = rep.nodes[n];
        w.node = n;
        w.hops = hops[n];

        const std::vector<Interval> base = busyIntervals(baseline, n);
        const std::vector<Interval> pert = busyIntervals(perturbed, n);
        const std::vector<Tick> pts = breakpoints(base, pert, horizon);

        // Sweep: E(t) = busy_base(0..t) - busy_pert(0..t) is the
        // excess idle of the perturbed run; slope per segment is
        // (base busy?) - (pert busy?). E returns to ~0 once both runs
        // finish (equal total work), so the node's damage is the peak,
        // not the final value. E is piecewise linear, so the peak sits
        // on a breakpoint.
        Tick excess = 0, peak = 0;
        std::size_t bi = 0, pi = 0;
        for (std::size_t k = 0; k + 1 < pts.size(); ++k) {
            const Tick t0 = pts[k], t1 = pts[k + 1];
            const int slope = (busyAt(base, bi, t0) ? 1 : 0) -
                              (busyAt(pert, pi, t0) ? 1 : 0);
            const Tick next = excess + slope * (t1 - t0);
            if (w.arrival < 0 && slope > 0 && next >= thr)
                w.arrival = t0 + (thr - excess); // slope is exactly +1
            excess = next;
            peak = std::max(peak, excess);
        }
        w.excessIdle = peak;
    }

    // Reached set, decay distance, and the propagation-speed fit
    // (hops against arrival time, least squares; the slope is in
    // hops per millisecond of virtual time).
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    int npts = 0;
    for (const NodeWave &w : rep.nodes) {
        if (w.excessIdle >= thr) {
            ++rep.reached;
            if (w.hops > rep.decayHops)
                rep.decayHops = w.hops;
        }
        if (w.arrival < 0 || w.hops < 0)
            continue;
        const double x = static_cast<double>(w.arrival) / kMsec;
        const double y = w.hops;
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
        ++npts;
    }
    if (npts >= 2) {
        const double varx = sxx - sx * sx / npts;
        if (varx > 1e-12) {
            rep.speedHopsPerMs = (sxy - sx * sy / npts) / varx;
            rep.speedFinite = true;
        }
    }
    return rep;
}

void
exportIdleWave(const SpanTracer &baseline, const SpanTracer &perturbed,
               int nprocs, SpanTracer &out)
{
    const Tick horizon =
        std::max(baseline.lastTick(), perturbed.lastTick());
    for (int n = 0; n < nprocs; ++n) {
        const std::vector<Interval> base = busyIntervals(baseline, n);
        const std::vector<Interval> pert = busyIntervals(perturbed, n);
        const std::vector<Tick> pts = breakpoints(base, pert, horizon);
        std::size_t bi = 0, pi = 0;
        Tick waveBegin = -1;
        for (std::size_t k = 0; k + 1 < pts.size(); ++k) {
            const Tick t0 = pts[k];
            const bool rising = busyAt(base, bi, t0) &&
                                !busyAt(pert, pi, t0);
            if (rising && waveBegin < 0)
                waveBegin = t0;
            if (!rising && waveBegin >= 0) {
                out.span(n, TrackKind::Cpu, SpanCat::IdleWave, waveBegin,
                         t0);
                waveBegin = -1;
            }
        }
        if (waveBegin >= 0)
            out.span(n, TrackKind::Cpu, SpanCat::IdleWave, waveBegin,
                     horizon);
    }
}

std::string
WavefrontReport::render() const
{
    std::string out;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "wavefront: delay node %d at %.3f us for %.3f us "
                  "(threshold %.1f%%)\n",
                  config.delayedNode,
                  static_cast<double>(config.delayAt) / kUsec,
                  static_cast<double>(config.delayDuration) / kUsec,
                  100.0 * config.threshold);
    out += buf;
    out += "  node  hops    arrival_us  excess_idle_us  reached\n";
    const Tick thrRaw = static_cast<Tick>(
        config.threshold * static_cast<double>(config.delayDuration));
    const Tick thr = thrRaw > 0 ? thrRaw : 1;
    for (const NodeWave &w : nodes) {
        char arrival[32];
        if (w.arrival >= 0)
            std::snprintf(arrival, sizeof(arrival), "%12.3f",
                          static_cast<double>(w.arrival) / kUsec);
        else
            std::snprintf(arrival, sizeof(arrival), "%12s", "-");
        std::snprintf(buf, sizeof(buf),
                      "  %4d  %4d  %s  %14.3f  %s\n", w.node, w.hops,
                      arrival,
                      static_cast<double>(w.excessIdle) / kUsec,
                      w.excessIdle >= thr ? "yes" : "no");
        out += buf;
    }
    std::snprintf(buf, sizeof(buf),
                  "  excess runtime : %.3f us\n  reached        : "
                  "%d/%zu nodes\n  decay distance : %d hops\n",
                  static_cast<double>(excessRuntime) / kUsec, reached,
                  nodes.size(), decayHops);
    out += buf;
    if (speedFinite)
        std::snprintf(buf, sizeof(buf),
                      "  speed          : %.3f hops/ms\n",
                      speedHopsPerMs);
    else
        std::snprintf(buf, sizeof(buf), "  speed          : n/a\n");
    out += buf;
    return out;
}

} // namespace nowcluster
