#include "obs/tracer.hh"

namespace nowcluster {

const char *
spanCatName(SpanCat cat)
{
    switch (cat) {
      case SpanCat::Compute:
        return "compute";
      case SpanCat::OSend:
        return "o_send";
      case SpanCat::ORecv:
        return "o_recv";
      case SpanCat::LWire:
        return "L-wire";
      case SpanCat::GapStall:
        return "g-stall";
      case SpanCat::GStall:
        return "G-stall";
      case SpanCat::Retransmit:
        return "retransmit";
      case SpanCat::BarrierWait:
        return "barrier-wait";
    }
    return "?";
}

const char *
trackKindName(TrackKind track)
{
    switch (track) {
      case TrackKind::Cpu:
        return "cpu";
      case TrackKind::NicTx:
        return "nic-tx";
      case TrackKind::NicRx:
        return "nic-rx";
    }
    return "?";
}

} // namespace nowcluster
