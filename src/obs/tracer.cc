#include "obs/tracer.hh"

namespace nowcluster {

void
SpanTracer::absorb(const SpanTracer &other)
{
    spans_.insert(spans_.end(), other.spans_.begin(), other.spans_.end());
    msgs_.reserve(msgs_.size() + other.msgs_.size());
    for (const ObsMessage &m : other.msgs_) {
        msgIndex_.emplace(m.id, msgs_.size());
        msgs_.push_back(m);
    }
}

const char *
spanCatName(SpanCat cat)
{
    switch (cat) {
      case SpanCat::Compute:
        return "compute";
      case SpanCat::OSend:
        return "o_send";
      case SpanCat::ORecv:
        return "o_recv";
      case SpanCat::LWire:
        return "L-wire";
      case SpanCat::GapStall:
        return "g-stall";
      case SpanCat::GStall:
        return "G-stall";
      case SpanCat::Retransmit:
        return "retransmit";
      case SpanCat::BarrierWait:
        return "barrier-wait";
      case SpanCat::IdleWave:
        return "idle-wave";
    }
    return "?";
}

const char *
trackKindName(TrackKind track)
{
    switch (track) {
      case TrackKind::Cpu:
        return "cpu";
      case TrackKind::NicTx:
        return "nic-tx";
      case TrackKind::NicRx:
        return "nic-rx";
    }
    return "?";
}

} // namespace nowcluster
