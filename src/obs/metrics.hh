/**
 * @file
 * The metrics registry: named counters, gauges, and fixed-bucket
 * histograms behind one snapshot-able interface.
 *
 * Two registration styles:
 *
 *  - owned metrics (`counter()`, `gauge()`, `histogram()`): the
 *    registry allocates the storage and returns a stable reference the
 *    caller increments directly -- hot paths pay a plain integer add,
 *    never a name lookup;
 *
 *  - probes (`probe()`): an existing live location (an AmCounters or
 *    FaultCounters field) is registered by pointer, so legacy counter
 *    structs join the registry without changing their hot paths at all.
 *
 * Multiple registrations under one name (e.g., "am.sent" probed from
 * every node) are summed at snapshot time, which is exactly the
 * cluster-wide aggregation the old hand-written loops performed.
 *
 * Threading: a registry belongs to one Cluster and is only touched from
 * that cluster's simulation thread. Under the parallel experiment
 * runner each point owns a private registry; RunResult carries the
 * point's snapshot and `mergeSnapshots` combines them in submission
 * order, so sweep output is byte-identical at any --jobs value.
 */

#ifndef NOWCLUSTER_OBS_METRICS_HH_
#define NOWCLUSTER_OBS_METRICS_HH_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "base/types.hh"

namespace nowcluster {

/** A fixed-bucket histogram of Tick-valued observations. */
class Histogram
{
  public:
    /** @param bounds Ascending inclusive upper bounds; observations
     *  above the last bound land in the overflow bucket. */
    explicit Histogram(std::vector<Tick> bounds);

    void observe(Tick v);

    const std::vector<Tick> &bounds() const { return bounds_; }
    /** bounds().size() + 1 entries; the last is the overflow bucket. */
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }
    std::uint64_t count() const { return count_; }
    Tick sum() const { return sum_; }

    /** Merge another histogram with identical bounds (bucket-wise add). */
    void mergeFrom(const Histogram &other);

    /**
     * Overwrite buckets/count/sum wholesale (the svc result codec
     * reconstructing a persisted snapshot). `buckets` must have
     * bounds().size() + 1 entries; false (and no change) otherwise or
     * when count disagrees with the bucket total.
     */
    bool restore(const std::vector<std::uint64_t> &buckets,
                 std::uint64_t count, Tick sum);

  private:
    std::vector<Tick> bounds_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    Tick sum_ = 0;
};

/** Point-in-time copy of everything a registry knows. */
struct MetricsSnapshot
{
    /** Counters and probes, summed per name. */
    std::map<std::string, std::uint64_t> counters;
    /** Gauges, last-write per registration, summed per name. */
    std::map<std::string, double> gauges;
    std::map<std::string, Histogram> histograms;

    /** Accumulate another snapshot (counter/bucket sums). */
    void mergeFrom(const MetricsSnapshot &other);

    /** Counter value by name (0 when absent). */
    std::uint64_t counterOr(const std::string &name,
                            std::uint64_t fallback = 0) const;

    /** Aligned human-readable rendering, one metric per line. */
    std::string render() const;
};

/**
 * The registry. Registration order is deterministic (driven by the
 * deterministic simulation setup); snapshots are keyed by name, so
 * their rendering is stable regardless of registration order.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** An owned counter; same name returns the same storage. */
    std::uint64_t &counter(const std::string &name);

    /** An owned gauge; same name returns the same storage. */
    double &gauge(const std::string &name);

    /** An owned histogram; same name returns the same storage (bounds
     *  must match on re-registration). */
    Histogram &histogram(const std::string &name,
                         std::vector<Tick> bounds);

    /** Register live external locations; snapshot() reads them fresh.
     *  Many probes may share one name -- they are summed. */
    void probe(const std::string &name, const std::uint64_t *src);
    void probe(const std::string &name, const Tick *src);

    MetricsSnapshot snapshot() const;

  private:
    // deques: stable addresses for handed-out references.
    std::deque<std::pair<std::string, std::uint64_t>> counters_;
    std::deque<std::pair<std::string, double>> gauges_;
    std::deque<std::pair<std::string, Histogram>> histograms_;
    std::map<std::string, std::size_t> counterIndex_;
    std::map<std::string, std::size_t> gaugeIndex_;
    std::map<std::string, std::size_t> histogramIndex_;
    std::vector<std::pair<std::string, const std::uint64_t *>> probesU64_;
    std::vector<std::pair<std::string, const Tick *>> probesTick_;
};

/** Merge per-point snapshots in submission order (determinism under
 *  the parallel runner). */
MetricsSnapshot mergeSnapshots(const std::vector<MetricsSnapshot> &parts);

} // namespace nowcluster

#endif // NOWCLUSTER_OBS_METRICS_HH_
