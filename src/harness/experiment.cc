#include "harness/experiment.hh"

#include <cstdlib>

#include "apps/app.hh"
#include "base/logging.hh"
#include "splitc/splitc.hh"

namespace nowcluster {

void
Knobs::applyTo(LogGPParams &params) const
{
    if (overheadUs >= 0)
        params.setDesiredOverheadUsec(overheadUs);
    if (gapUs >= 0)
        params.setDesiredGapUsec(gapUs);
    if (latencyUs >= 0)
        params.setDesiredLatencyUsec(latencyUs);
    if (bulkMBps > 0)
        params.setBulkMBps(bulkMBps);
    if (occupancyUs >= 0)
        params.setOccupancyUsec(occupancyUs);
    if (window > 0)
        params.window = window;
    if (fabricHosts > 0 || fabricLinkMBps > 0) {
        params.fabric = true;
        if (fabricHosts > 0)
            params.fabricHostsPerSwitch = fabricHosts;
        if (fabricLinkMBps > 0)
            params.fabricLinkMBps = fabricLinkMBps;
    }
    if (dropRate >= 0 || dupRate >= 0 || corruptRate >= 0 ||
        reorderRate >= 0) {
        params.fault.enabled = true;
        if (dropRate >= 0)
            params.fault.dropRate = dropRate;
        if (dupRate >= 0)
            params.fault.dupRate = dupRate;
        if (corruptRate >= 0)
            params.fault.corruptRate = corruptRate;
        if (reorderRate >= 0)
            params.fault.reorderRate = reorderRate;
    }
    if (reorderMaxDelayUs >= 0)
        params.fault.reorderMaxDelay = usec(reorderMaxDelayUs);
    if (faultSeed >= 0)
        params.fault.seed = static_cast<std::uint64_t>(faultSeed);
    if (delayNode >= 0 && delayUs > 0) {
        // Scripted-only: rates stay zero, so enabling the model here
        // draws no randomness and the run stays exactly deterministic.
        params.fault.enabled = true;
        params.fault.delays.push_back(
            {static_cast<NodeId>(delayNode),
             usec(delayAtUs > 0 ? delayAtUs : 0), usec(delayUs)});
    }
    if (reliable >= 0)
        params.reliable = reliable != 0;
    if (retxTimeoutUs > 0)
        params.retxTimeout = usec(retxTimeoutUs);
    if (topo == 1 || topoHosts > 0 || topoLinkMBps > 0 ||
        topoOversub > 0 || topoHopUs >= 0) {
        params.topo = topo != 0;
        if (topoHosts > 0)
            params.topoHostsPerLeaf = topoHosts;
        if (topoLinkMBps > 0)
            params.topoLinkMBps = topoLinkMBps;
        if (topoOversub > 0)
            params.topoOversub = topoOversub;
        if (topoHopUs >= 0)
            params.topoHopLatency = usec(topoHopUs);
    }
    if (simThreads >= 0)
        params.simThreads = simThreads;
    if (simShards >= 0)
        params.simShards = simShards;
    if (!collAlg.empty())
        params.collAlg = collAlg;
}

RunResult
runApp(const std::string &app_key, const RunConfig &config)
{
    auto app = makeApp(app_key);
    app->setup(config.nprocs, config.scale, config.seed);

    LogGPParams params = config.machine.params;
    config.knobs.applyTo(params);
    // NOW_SIM_THREADS is a fallback only: an explicit per-run knob
    // (including an explicit 0 = classic engine) always wins.
    if (config.knobs.simThreads < 0 && envConfig().simThreads >= 0)
        params.simThreads = envConfig().simThreads;
    // NOW_COLL_ALG likewise: explicit per-run policy wins.
    if (config.knobs.collAlg.empty() && !envConfig().collAlg.empty())
        params.collAlg = envConfig().collAlg;

    fatal_if(config.trace && params.simThreads > 0,
             "message tracing records in global send order and needs "
             "--sim-threads 0 (span tracing via --obs works sharded)");

    SplitCRuntime rt(config.nprocs, params, config.seed);
    app->prepare(rt);
    if (config.obs)
        rt.cluster().setTracer(config.obs);
    if (config.trace) {
        rt.cluster().setTraceHook(
            [trace = config.trace](Tick issued, Tick ready, NodeId src,
                                   NodeId dst, PacketKind kind,
                                   std::uint32_t bytes) {
                trace->record(issued, ready, src, dst, kind, bytes);
            });
    }

    RunResult r;
    r.ok = rt.run([&](SplitC &sc) { app->run(sc); }, config.maxTime);
    r.runtime = rt.runtime();
    r.summary = summarizeComm(rt.cluster(), r.runtime, app->name());
    r.matrix = commMatrix(rt.cluster());
    r.maxMsgsPerProc = r.summary.maxMsgsPerProc;
    r.lockFailures = r.summary.lockFailures;
    r.simEvents = rt.cluster().eventsExecuted();
    r.simShards = rt.cluster().nshards();
    r.metrics = rt.cluster().metrics().snapshot();
    r.validated = r.ok && (!config.validate || app->validate());
    return r;
}

EnvConfig
parseEnvConfig()
{
    EnvConfig c;
    if (const char *s = std::getenv("NOW_SCALE")) {
        double v = std::atof(s);
        if (v > 0) {
            c.scaleSet = true;
            c.scale = v;
        } else {
            warn("ignoring invalid NOW_SCALE='%s'", s);
        }
    }
    if (const char *s = std::getenv("NOW_JOBS")) {
        long v = std::atol(s);
        if (v >= 0)
            c.jobs = static_cast<int>(v);
        else
            warn("ignoring invalid NOW_JOBS='%s'", s);
    }
    if (const char *s = std::getenv("NOW_SIM_THREADS")) {
        long v = std::atol(s);
        if (v >= 0)
            c.simThreads = static_cast<int>(v);
        else
            warn("ignoring invalid NOW_SIM_THREADS='%s'", s);
    }
    if (const char *s = std::getenv("NOW_COLL_ALG"))
        c.collAlg = s;
    if (const char *s = std::getenv("NOW_CACHE_DIR"))
        c.cacheDir = s;
    if (const char *s = std::getenv("NOW_BACKEND"))
        c.backend = s;
    return c;
}

const EnvConfig &
envConfig()
{
    // Magic-static init: the first caller (always single-threaded; the
    // runner reads this before spawning workers) does the getenv calls,
    // everyone after reads the immutable cache.
    static const EnvConfig cfg = parseEnvConfig();
    return cfg;
}

double
envScale()
{
    return envConfig().scale;
}

int
envJobs()
{
    return envConfig().jobs;
}

const std::string &
envCacheDir()
{
    return envConfig().cacheDir;
}

} // namespace nowcluster
