/**
 * @file
 * The experiment harness: configure a cluster with paper-style LogGP
 * knob settings, run a benchmark application on it, and collect the
 * measurements every bench binary needs.
 */

#ifndef NOWCLUSTER_HARNESS_EXPERIMENT_HH_
#define NOWCLUSTER_HARNESS_EXPERIMENT_HH_

#include <cstdint>
#include <string>

#include "net/loggp.hh"
#include "obs/metrics.hh"
#include "obs/tracer.hh"
#include "stats/comm_stats.hh"
#include "stats/trace.hh"

namespace nowcluster {

/** Paper-style knob settings; negative values mean "leave baseline". */
struct Knobs
{
    double overheadUs = -1;  ///< Desired mean o (Figure 5 x-axis).
    double gapUs = -1;       ///< Desired g (Figure 6 x-axis).
    double latencyUs = -1;   ///< Desired L (Figure 7 x-axis).
    double bulkMBps = -1;    ///< Available bulk bandwidth (Figure 8).
    double occupancyUs = -1; ///< Extension: rx-controller occupancy.
    int window = -1;         ///< Extension: flow-control window.
    /** Extension: switch-fabric contention model (enables when either
     *  field is set). */
    int fabricHosts = -1;
    double fabricLinkMBps = -1;

    // Lossy-fabric laboratory (net/fault.hh). Setting any rate >= 0
    // enables the fault model; `reliable` arms the retransmission
    // protocol independently.
    double dropRate = -1;    ///< P(wire event lost).
    double dupRate = -1;     ///< P(wire event duplicated).
    double corruptRate = -1; ///< P(payload corrupted -> CRC discard).
    double reorderRate = -1; ///< P(wire event delayed for reordering).
    double reorderMaxDelayUs = -1; ///< Bound on the reorder delay.
    long faultSeed = -1;     ///< Fault-model PRNG seed (default: 1).
    int reliable = -1;       ///< 1 = reliable delivery, 0 = force off.
    double retxTimeoutUs = -1; ///< Retransmission timeout (0/-1 = auto).

    /** One-off delay injection (the Afzal-style transient
     *  perturbation): stall processor `delayNode` at virtual time
     *  `delayAtUs` for `delayUs` microseconds. Setting `delayNode`
     *  enables the fault model (scripted-only: all rates stay zero, so
     *  the run consumes no fault randomness and stays exactly
     *  deterministic). */
    long delayNode = -1;   ///< Node to stall (-1 = no delay).
    double delayAtUs = -1; ///< Stall start, microseconds (-1 = t 0).
    double delayUs = -1;   ///< Stall duration, microseconds.

    /** Fat-tree topology model (net/topology.hh); `topo = 1` or any
     *  topo* field enables it. */
    int topo = -1;           ///< 1 = enable with defaults, 0 = off.
    int topoHosts = -1;      ///< Hosts per leaf switch.
    double topoLinkMBps = -1; ///< Edge link bandwidth.
    double topoOversub = -1; ///< Spine oversubscription ratio.
    double topoHopUs = -1;   ///< Extra cross-leaf wire latency (us).

    /** Collective-algorithm policy ("" = unset: the NOW_COLL_ALG
     *  environment fallback applies, then the machine default). See
     *  coll::CollPolicy::parse for the grammar ("naive", "tuned",
     *  "bcast=chain,allreduce=rdouble", ...). */
    std::string collAlg;

    /** Sharded parallel engine: worker thread count. -1 = unset (the
     *  NOW_SIM_THREADS environment fallback applies), 0 = classic
     *  single-heap engine, >= 1 = sharded. */
    int simThreads = -1;
    /** Shard count override (0/-1 = automatic). Results depend on the
     *  shard layout, never on simThreads. */
    int simShards = -1;

    /** Apply to a parameter set. */
    void applyTo(LogGPParams &params) const;
};

/** Complete configuration of one application run. */
struct RunConfig
{
    int nprocs = 32;
    double scale = 1.0;
    std::uint64_t seed = 1;
    MachineConfig machine = MachineConfig::berkeleyNow();
    Knobs knobs;
    /** Virtual-time budget; exceeded runs are reported failed (the
     *  paper's "N/A" entries, e.g. livelocked Barnes). */
    Tick maxTime = 600 * kSec;
    bool validate = true;
    /**
     * Which engine produced (or must produce) the result: 0 = the
     * discrete-event simulator, 1 = the analytic LP backend
     * (src/backend). Part of the canonical spec so analytic and
     * simulated results never alias in the content-addressed store.
     */
    int origin = 0;
    /** Optional message trace sink (not owned). */
    MessageTrace *trace = nullptr;
    /** Optional span tracer (not owned): records per-track timelines
     *  for the Perfetto exporter and the critical-path analyzer. */
    SpanTracer *obs = nullptr;
};

/** Everything measured from one run. */
struct RunResult
{
    bool ok = false;        ///< Completed within budget.
    bool validated = false; ///< Output passed the app's check.
    Tick runtime = 0;
    CommSummary summary;
    CommMatrix matrix;
    std::uint64_t maxMsgsPerProc = 0;
    std::uint64_t lockFailures = 0;
    /** Simulator events executed, summed over shards (perf metric;
     *  deliberately excluded from the result fingerprint). */
    std::uint64_t simEvents = 0;
    /** Shards the run used (1 = classic engine). */
    int simShards = 1;
    /** Snapshot of the cluster's metrics registry at run end. */
    MetricsSnapshot metrics;
};

/** Run one application under the given configuration. */
RunResult runApp(const std::string &app_key, const RunConfig &config);

/**
 * Environment-derived configuration, read exactly once (first use) and
 * cached. Worker threads of the parallel runner must never call
 * getenv() themselves — getenv is not guaranteed thread-safe against a
 * host process mutating the environment — so everything env-derived is
 * funneled through here and then passed by value through RunConfig.
 */
struct EnvConfig
{
    bool scaleSet = false; ///< NOW_SCALE was present and valid.
    double scale = 1.0;    ///< NOW_SCALE value (1.0 if unset).
    int jobs = 0;          ///< NOW_JOBS value (0 = auto-detect).
    /** NOW_SIM_THREADS: sharded-engine thread count (-1 = unset; 0 =
     *  classic engine; >= 1 = sharded). A per-run Knobs.simThreads
     *  setting wins over this. */
    int simThreads = -1;
    /** NOW_COLL_ALG: collective policy fallback ("" = unset). A
     *  per-run Knobs.collAlg setting wins over this. */
    std::string collAlg;
    /** NOW_CACHE_DIR: result-store directory ("" = caching off). */
    std::string cacheDir;
    /** NOW_BACKEND: experiment-backend fallback for tools that take
     *  --backend ("" = unset, meaning sim). */
    std::string backend;
};

/** Parse the environment right now (testing; most code wants the
 *  cached envConfig()). */
EnvConfig parseEnvConfig();

/** The cached process-wide environment configuration (first-use read;
 *  later environment changes are deliberately invisible). */
const EnvConfig &envConfig();

/** Environment-variable scale override (NOW_SCALE), default 1.0. */
double envScale();

/** Environment-variable worker-count override (NOW_JOBS), 0 = auto. */
int envJobs();

/** Environment-variable result-store directory (NOW_CACHE_DIR), ""
 *  when unset (caching off). */
const std::string &envCacheDir();

} // namespace nowcluster

#endif // NOWCLUSTER_HARNESS_EXPERIMENT_HH_
