#include "harness/runner.hh"

#include <atomic>
#include <cstdarg>
#include <cstddef>
#include <cstdio>
#include <exception>
#include <thread>

#include "base/logging.hh"

namespace nowcluster {

int
hardwareJobs()
{
    unsigned n = std::thread::hardware_concurrency();
    return n ? static_cast<int>(n) : 1;
}

int
resolveJobs(int jobs)
{
    if (jobs > 0)
        return jobs;
    int env = envJobs();
    return env > 0 ? env : hardwareJobs();
}

namespace {

/** Run one point, containing any failure to its own result slot. */
RunResult
runPointGuarded(const RunPoint &pt)
{
    try {
        return runApp(pt.app, pt.config);
    } catch (const std::exception &e) {
        warn("point '%s' failed: %s", pt.app.c_str(), e.what());
    } catch (...) {
        warn("point '%s' failed with unknown exception", pt.app.c_str());
    }
    return RunResult{}; // ok=false, validated=false.
}

} // namespace

std::vector<RunResult>
runPoints(const std::vector<RunPoint> &points, int jobs)
{
    // Force the one-time getenv pass before any worker exists.
    (void)envConfig();

    const std::size_t n = points.size();
    std::vector<RunResult> results(n);
    jobs = resolveJobs(jobs);
    const int workers =
        static_cast<int>(std::min<std::size_t>(n, jobs));

    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            results[i] = runPointGuarded(points[i]);
        return results;
    }

    // Workers claim indices from one shared counter; each result lands
    // in its submission slot, so completion order never shows.
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (int w = 0; w < workers; ++w) {
        threads.emplace_back([&] {
            for (;;) {
                std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= n)
                    return;
                results[i] = runPointGuarded(points[i]);
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    return results;
}

namespace {

void
appendF(std::string &out, const char *fmt, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    out += buf;
}

} // namespace

std::string
fingerprint(const RunResult &r)
{
    std::string out;
    out.reserve(1024);
    appendF(out, "ok=%d validated=%d runtime=%lld\n", r.ok ? 1 : 0,
            r.validated ? 1 : 0, static_cast<long long>(r.runtime));
    const CommSummary &s = r.summary;
    appendF(out, "app=%s nprocs=%d runtime=%lld\n", s.app.c_str(),
            s.nprocs, static_cast<long long>(s.runtime));
    appendF(out,
            "msgs avg=%llu max=%llu perMs=%.17g intervalUs=%.17g "
            "barrierMs=%.17g\n",
            static_cast<unsigned long long>(s.avgMsgsPerProc),
            static_cast<unsigned long long>(s.maxMsgsPerProc),
            s.msgsPerProcPerMs, s.msgIntervalUs, s.barrierIntervalMs);
    appendF(out, "pctBulk=%.17g pctReads=%.17g bulk=%.17g small=%.17g\n",
            s.pctBulk, s.pctReads, s.bulkKBps, s.smallKBps);
    appendF(out, "locks fail=%llu acq=%llu\n",
            static_cast<unsigned long long>(s.lockFailures),
            static_cast<unsigned long long>(s.lockAcquires));
    appendF(out,
            "rel retx=%llu dup=%llu giveup=%llu drop=%llu fdup=%llu "
            "delay=%llu\n",
            static_cast<unsigned long long>(s.retransmits),
            static_cast<unsigned long long>(s.dupsSuppressed),
            static_cast<unsigned long long>(s.retxGiveUps),
            static_cast<unsigned long long>(s.faultDropped),
            static_cast<unsigned long long>(s.faultDuplicated),
            static_cast<unsigned long long>(s.faultDelayed));
    appendF(out, "matrix %d:", r.matrix.nprocs);
    for (std::uint64_t c : r.matrix.counts)
        appendF(out, " %llu", static_cast<unsigned long long>(c));
    out += "\n";
    return out;
}

} // namespace nowcluster
