#include "harness/runner.hh"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <exception>

#include "base/logging.hh"

namespace nowcluster {

int
hardwareJobs()
{
    unsigned n = std::thread::hardware_concurrency();
    return n ? static_cast<int>(n) : 1;
}

int
resolveJobs(int jobs)
{
    if (jobs > 0)
        return jobs;
    int env = envJobs();
    return env > 0 ? env : hardwareJobs();
}

// ---- Runner ---------------------------------------------------------

Runner::Runner(int jobs, std::size_t maxQueue)
    : jobs_(resolveJobs(jobs)), maxQueue_(maxQueue)
{
    // Force the one-time getenv pass before any worker exists.
    (void)envConfig();
    workers_.reserve(jobs_);
    for (int w = 0; w < jobs_; ++w)
        workers_.emplace_back([this] { workerLoop(); });
}

Runner::~Runner()
{
    shutdown();
}

void
Runner::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mu_);
            workReady_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stopping_ and nothing left to do.
            job = std::move(queue_.front());
            queue_.pop_front();
            ++active_;
        }
        job();
        {
            std::lock_guard<std::mutex> lock(mu_);
            --active_;
            if (queue_.empty() && active_ == 0)
                idle_.notify_all();
        }
    }
}

bool
Runner::trySubmit(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (stopping_)
            return false;
        if (maxQueue_ && queue_.size() >= maxQueue_)
            return false; // Backpressure: caller retries later.
        queue_.push_back(std::move(job));
    }
    workReady_.notify_one();
    return true;
}

void
Runner::drain()
{
    std::unique_lock<std::mutex> lock(mu_);
    idle_.wait(lock,
               [this] { return queue_.empty() && active_ == 0; });
}

void
Runner::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (stopping_ && workers_.empty())
            return;
        stopping_ = true;
    }
    // Accepted jobs still run to completion: workers only exit on an
    // empty queue, which is the graceful-drain contract nowlabd's
    // SIGTERM path relies on.
    workReady_.notify_all();
    for (std::thread &t : workers_) {
        if (t.joinable())
            t.join();
    }
    workers_.clear();
}

std::size_t
Runner::queueDepth() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
}

std::size_t
Runner::activeCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return active_;
}

// ---- cache hook -----------------------------------------------------

namespace {

RunCache *g_runCache = nullptr;

/** Run one point, containing any failure to its own result slot. */
RunResult
runPointGuarded(const RunPoint &pt, bool *completed)
{
    try {
        RunResult r = runApp(pt.app, pt.config);
        if (completed)
            *completed = true;
        return r;
    } catch (const std::exception &e) {
        warn("point '%s' failed: %s", pt.app.c_str(), e.what());
    } catch (...) {
        warn("point '%s' failed with unknown exception", pt.app.c_str());
    }
    return RunResult{}; // ok=false, validated=false.
}

} // namespace

void
setRunCache(RunCache *cache)
{
    g_runCache = cache;
}

RunCache *
runCache()
{
    return g_runCache;
}

RunResult
runPointCached(const RunPoint &pt)
{
    // A point with a sink attached has side effects (the recorded
    // trace) that a cached result cannot replay: always simulate.
    RunCache *cache = g_runCache;
    bool cacheable =
        cache && !pt.config.trace && !pt.config.obs;

    RunResult r;
    if (cacheable && cache->lookup(pt, r))
        return r;

    bool completed = false;
    r = runPointGuarded(pt, &completed);
    // Timed-out and invalid runs are deterministic too (the budget is
    // part of the key); only exception-path failures stay uncached.
    if (cacheable && completed)
        cache->insert(pt, r);
    return r;
}

std::vector<RunResult>
runPoints(const std::vector<RunPoint> &points, int jobs)
{
    (void)envConfig();

    const std::size_t n = points.size();
    std::vector<RunResult> results(n);
    const int workers = static_cast<int>(
        std::min<std::size_t>(std::max<std::size_t>(n, 1),
                              resolveJobs(jobs)));

    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            results[i] = runPointCached(points[i]);
        return results;
    }

    // Each result lands in its submission slot, so completion order
    // never shows.
    Runner pool(workers);
    for (std::size_t i = 0; i < n; ++i) {
        pool.trySubmit([&points, &results, i] {
            results[i] = runPointCached(points[i]);
        });
    }
    pool.shutdown();
    return results;
}

namespace {

void
appendF(std::string &out, const char *fmt, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    out += buf;
}

} // namespace

std::string
fingerprint(const RunResult &r)
{
    std::string out;
    out.reserve(1024);
    appendF(out, "ok=%d validated=%d runtime=%lld\n", r.ok ? 1 : 0,
            r.validated ? 1 : 0, static_cast<long long>(r.runtime));
    const CommSummary &s = r.summary;
    appendF(out, "app=%s nprocs=%d runtime=%lld\n", s.app.c_str(),
            s.nprocs, static_cast<long long>(s.runtime));
    appendF(out,
            "msgs avg=%llu max=%llu perMs=%.17g intervalUs=%.17g "
            "barrierMs=%.17g\n",
            static_cast<unsigned long long>(s.avgMsgsPerProc),
            static_cast<unsigned long long>(s.maxMsgsPerProc),
            s.msgsPerProcPerMs, s.msgIntervalUs, s.barrierIntervalMs);
    appendF(out, "pctBulk=%.17g pctReads=%.17g bulk=%.17g small=%.17g\n",
            s.pctBulk, s.pctReads, s.bulkKBps, s.smallKBps);
    appendF(out, "locks fail=%llu acq=%llu\n",
            static_cast<unsigned long long>(s.lockFailures),
            static_cast<unsigned long long>(s.lockAcquires));
    appendF(out,
            "rel retx=%llu dup=%llu giveup=%llu drop=%llu fdup=%llu "
            "delay=%llu\n",
            static_cast<unsigned long long>(s.retransmits),
            static_cast<unsigned long long>(s.dupsSuppressed),
            static_cast<unsigned long long>(s.retxGiveUps),
            static_cast<unsigned long long>(s.faultDropped),
            static_cast<unsigned long long>(s.faultDuplicated),
            static_cast<unsigned long long>(s.faultDelayed));
    appendF(out, "matrix %d:", r.matrix.nprocs);
    for (std::uint64_t c : r.matrix.counts)
        appendF(out, " %llu", static_cast<unsigned long long>(c));
    out += "\n";
    return out;
}

} // namespace nowcluster
