/**
 * @file
 * The parallel experiment engine.
 *
 * Every figure and table in the paper is a sweep: many independent
 * (app, knob-point) simulations. Each simulation is a fully
 * self-contained deterministic world (its own Cluster, Simulator,
 * PRNG streams, and fibers; the fiber scheduler is thread_local), so
 * points fan out across OS threads with no shared mutable state and no
 * change in results: a sweep run with jobs=1 and jobs=8 is
 * byte-identical per point, enforced by tests/test_runner.cc.
 *
 * Two layers:
 *
 *  - Runner: a persistent worker pool with a size-bounded job queue.
 *    nowlabd keeps one alive for its whole life and leans on the bound
 *    for backpressure (trySubmit fails when the queue is full);
 *    drain() blocks until every accepted job has finished.
 *
 *  - runPoints(): the batch front end every bench binary and sweep
 *    uses. It stands up a Runner sized for the batch, consults the
 *    process-global RunCache (when installed) for each point, and
 *    returns results in submission order regardless of completion
 *    order.
 */

#ifndef NOWCLUSTER_HARNESS_RUNNER_HH_
#define NOWCLUSTER_HARNESS_RUNNER_HH_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "harness/experiment.hh"

namespace nowcluster {

/** One experiment point: an application under a configuration. */
struct RunPoint
{
    std::string app;
    RunConfig config;
};

/** Worker threads the machine supports (hardware_concurrency, >= 1). */
int hardwareJobs();

/**
 * Resolve a user-facing --jobs value: positive means itself; zero or
 * negative means "auto" (NOW_JOBS if set, else hardwareJobs()).
 */
int resolveJobs(int jobs);

/**
 * A persistent pool of experiment workers with a bounded queue.
 *
 * Jobs are opaque thunks so the pool can carry both raw experiment
 * points (runPoints) and service jobs that wrap a point with job-table
 * bookkeeping (nowlabd). Thread-safe; jobs may be submitted from any
 * thread, including from inside other jobs' completion paths.
 */
class Runner
{
  public:
    /**
     * @param jobs      Worker count; <= 0 resolves via resolveJobs().
     * @param maxQueue  Queued-job bound (running jobs excluded);
     *                  0 = unbounded.
     */
    explicit Runner(int jobs = 0, std::size_t maxQueue = 0);

    /** Drains and joins. */
    ~Runner();

    Runner(const Runner &) = delete;
    Runner &operator=(const Runner &) = delete;

    /**
     * Enqueue a job unless the queue is at its bound (backpressure) or
     * the pool is shutting down.
     * @return false if rejected; the job was not enqueued.
     */
    bool trySubmit(std::function<void()> job);

    /** Block until every accepted job has run to completion. */
    void drain();

    /** Stop accepting work, drain, and join the workers. Idempotent;
     *  the destructor calls it. */
    void shutdown();

    int jobs() const { return jobs_; }
    std::size_t maxQueue() const { return maxQueue_; }
    /** Jobs accepted but not yet started. */
    std::size_t queueDepth() const;
    /** Jobs currently executing. */
    std::size_t activeCount() const;

  private:
    void workerLoop();

    const int jobs_;
    const std::size_t maxQueue_;

    mutable std::mutex mu_;
    std::condition_variable workReady_;
    std::condition_variable idle_;
    std::deque<std::function<void()>> queue_;
    std::size_t active_ = 0;
    bool stopping_ = false;
    std::vector<std::thread> workers_;
};

/**
 * Result-cache hook consulted by runPoints (and nowlabd) around every
 * experiment. The canonical implementation is svc::StoreCache over the
 * on-disk content-addressed store; the hook lives here so the harness
 * stays independent of the service layer. Implementations must be
 * thread-safe: workers call them concurrently.
 */
class RunCache
{
  public:
    virtual ~RunCache() = default;
    /** True and fill `out` if a stored result exists for `pt`. */
    virtual bool lookup(const RunPoint &pt, RunResult &out) = 0;
    /** Persist a freshly computed result for `pt`. */
    virtual void insert(const RunPoint &pt, const RunResult &r) = 0;
};

/** Install (or, with nullptr, remove) the process-global result cache.
 *  Not owned. Install before spawning runners; not thread-safe. */
void setRunCache(RunCache *cache);

/** The installed cache, or nullptr. */
RunCache *runCache();

/**
 * Run one point through the cache (when installed and the point has no
 * trace/obs sink attached -- sinks have side effects a cached result
 * cannot replay) or the simulator, containing any failure to the
 * returned result. Freshly computed results are inserted into the
 * cache; results from an exception path are not.
 */
RunResult runPointCached(const RunPoint &pt);

/**
 * Run every point, fanning out across min(jobs, points) threads, and
 * return results in submission order. jobs <= 0 selects resolveJobs's
 * auto default. A point that times out, fails validation, or throws
 * only fails itself: its slot reports ok=false and every other point
 * still runs. Points are served from the installed RunCache when they
 * hit.
 *
 * @note Points must not share a RunConfig::trace sink: the trace hook
 *       would be written from multiple workers at once.
 */
std::vector<RunResult> runPoints(const std::vector<RunPoint> &points,
                                 int jobs = 0);

/**
 * Canonical byte-exact rendering of everything a run measured (status,
 * runtime ticks, full comm summary with %.17g doubles, comm matrix).
 * Two runs are byte-identical iff their fingerprints compare equal;
 * this is the string the determinism test and `nowlab perf` diff
 * between --jobs 1 and --jobs N, and the one the result store must
 * reproduce exactly on a cache hit (tests/test_svc.cc).
 */
std::string fingerprint(const RunResult &r);

} // namespace nowcluster

#endif // NOWCLUSTER_HARNESS_RUNNER_HH_
