/**
 * @file
 * The parallel experiment engine.
 *
 * Every figure and table in the paper is a sweep: many independent
 * (app, knob-point) simulations. Each simulation is a fully
 * self-contained deterministic world (its own Cluster, Simulator,
 * PRNG streams, and fibers; the fiber scheduler is thread_local), so
 * points fan out across OS threads with no shared mutable state and no
 * change in results: a sweep run with jobs=1 and jobs=8 is
 * byte-identical per point, enforced by tests/test_runner.cc.
 *
 * Design: deliberately no work stealing. Workers pull point indices
 * from one atomic counter (each point runs on exactly one thread at a
 * time) and write results into a pre-sized vector, so results come back
 * in submission order regardless of completion order.
 */

#ifndef NOWCLUSTER_HARNESS_RUNNER_HH_
#define NOWCLUSTER_HARNESS_RUNNER_HH_

#include <string>
#include <vector>

#include "harness/experiment.hh"

namespace nowcluster {

/** One experiment point: an application under a configuration. */
struct RunPoint
{
    std::string app;
    RunConfig config;
};

/** Worker threads the machine supports (hardware_concurrency, >= 1). */
int hardwareJobs();

/**
 * Resolve a user-facing --jobs value: positive means itself; zero or
 * negative means "auto" (NOW_JOBS if set, else hardwareJobs()).
 */
int resolveJobs(int jobs);

/**
 * Run every point, fanning out across min(jobs, points) threads, and
 * return results in submission order. jobs <= 0 selects resolveJobs's
 * auto default. A point that times out, fails validation, or throws
 * only fails itself: its slot reports ok=false and every other point
 * still runs.
 *
 * @note Points must not share a RunConfig::trace sink: the trace hook
 *       would be written from multiple workers at once.
 */
std::vector<RunResult> runPoints(const std::vector<RunPoint> &points,
                                 int jobs = 0);

/**
 * Canonical byte-exact rendering of everything a run measured (status,
 * runtime ticks, full comm summary with %.17g doubles, comm matrix).
 * Two runs are byte-identical iff their fingerprints compare equal;
 * this is the string the determinism test and `nowlab perf` diff
 * between --jobs 1 and --jobs N.
 */
std::string fingerprint(const RunResult &r);

} // namespace nowcluster

#endif // NOWCLUSTER_HARNESS_RUNNER_HH_
