#include "coll/tuned/harness.hh"

#include <algorithm>
#include <cstring>

#include "base/logging.hh"
#include "coll/cost.hh"
#include "coll/tuned/registry.hh"
#include "coll/tuned/tuned.hh"

namespace nowcluster {
namespace coll {

int
ValidationReport::hits(double tol) const
{
    int n = 0;
    for (const GridPoint &gp : points)
        n += gp.within(tol) ? 1 : 0;
    return n;
}

double
ValidationReport::hitRate(double tol) const
{
    if (points.empty())
        return 1.0;
    return static_cast<double>(hits(tol)) /
           static_cast<double>(points.size());
}

Tick
measureCollective(const LogGPParams &params, Coll coll, CollAlg alg,
                  int nprocs, std::size_t bytes, std::uint64_t seed)
{
    panic_if(nprocs < 1, "measureCollective: nprocs=%d", nprocs);
    panic_if(collOf(alg) != coll, "measureCollective: %s is not a %s",
             algName(alg), collName(coll));
    panic_if(!algValid(alg, nprocs, bytes),
             "measureCollective: %s invalid at p=%d bytes=%zu",
             algName(alg), nprocs, bytes);

    SplitCRuntime rt(nprocs, params, seed);
    TunedCollectives tc(rt);

    const std::size_t p = static_cast<std::size_t>(nprocs);
    const std::size_t words = bytes / sizeof(std::int64_t);

    // Per-processor buffers, sized by the collective's payload
    // semantics (see predictCollective); allocated outside run() so
    // remote stores always target live memory.
    std::vector<std::vector<std::uint8_t>> bufA(p);
    std::vector<std::vector<std::uint8_t>> bufB(p);
    std::vector<std::vector<std::int64_t>> vec(p);
    for (std::size_t i = 0; i < p; ++i) {
        switch (coll) {
        case Coll::Broadcast:
            bufA[i].assign(std::max<std::size_t>(bytes, 1), 0);
            break;
        case Coll::AllGather:
            bufA[i].assign(std::max<std::size_t>(bytes, 1), 1);
            bufB[i].assign(std::max<std::size_t>(p * bytes, 1), 0);
            break;
        case Coll::AllToAll:
            bufA[i].assign(std::max<std::size_t>(p * bytes, 1), 1);
            bufB[i].assign(std::max<std::size_t>(p * bytes, 1), 0);
            break;
        case Coll::Barrier:
            break;
        case Coll::AllReduce:
            vec[i].assign(std::max<std::size_t>(words, 1), 1);
            break;
        }
    }

    auto invoke = [&](SplitC &sc) {
        const int me = sc.myProc();
        switch (coll) {
        case Coll::Broadcast:
            tc.broadcast(sc, bufA[me].data(), bytes, 0, alg);
            break;
        case Coll::AllGather:
            tc.allGather(sc, bufA[me].data(), bytes, bufB[me].data(),
                         alg);
            break;
        case Coll::AllToAll:
            tc.allToAll(sc, bufA[me].data(), bytes, bufB[me].data(),
                        alg);
            break;
        case Coll::Barrier:
            tc.barrier(sc, alg);
            break;
        case Coll::AllReduce:
            tc.allReduceAdd(sc, vec[me].data(), words, alg);
            break;
        }
    };

    Tick span = 0;
    const bool ok = rt.run([&](SplitC &sc) {
        invoke(sc); // Warm-up: grows staging, touches every path.
        sc.barrier();
        const Tick t0 = sc.now();
        invoke(sc);
        const Tick done = sc.allReduceMax(sc.now());
        if (sc.myProc() == 0)
            span = done - t0;
    });
    panic_if(!ok, "measureCollective: %s p=%d bytes=%zu timed out",
             algName(alg), nprocs, bytes);
    return span;
}

namespace {

GridPoint
racePoint(const LogGPParams &params, const LogGPPoint &pt, Coll coll,
          int nprocs, std::size_t bytes)
{
    GridPoint gp;
    gp.coll = coll;
    gp.nprocs = nprocs;
    gp.bytes = bytes;
    gp.predictedPick = chooseAlg(pt, coll, nprocs, bytes);
    for (CollAlg alg : algsFor(coll)) {
        if (!algValid(alg, nprocs, bytes))
            continue;
        AlgMeasurement m;
        m.alg = alg;
        m.predicted = predictCollective(pt, coll, alg, nprocs, bytes);
        m.measured = measureCollective(params, coll, alg, nprocs, bytes);
        gp.algs.push_back(m);
    }
    panic_if(gp.algs.empty(), "no valid algorithm for %s at p=%d",
             collName(coll), nprocs);
    gp.measuredBest = gp.algs.front().alg;
    gp.measuredOfBest = gp.algs.front().measured;
    for (const AlgMeasurement &m : gp.algs) {
        if (m.measured < gp.measuredOfBest) {
            gp.measuredBest = m.alg;
            gp.measuredOfBest = m.measured;
        }
        if (m.alg == gp.predictedPick)
            gp.measuredOfPick = m.measured;
    }
    return gp;
}

} // namespace

ValidationReport
validateGrid(const LogGPParams &params, const std::vector<int> &procs,
             const std::vector<std::size_t> &sizes)
{
    const LogGPPoint pt = pointFromParams(params);
    panic_if(!pt.valid, "validateGrid: invalid LogGP point");

    static const Coll kDataColls[] = {Coll::Broadcast, Coll::AllGather,
                                      Coll::AllToAll, Coll::AllReduce};
    ValidationReport rep;
    for (int p : procs) {
        if (p < 2)
            continue; // Single-processor collectives are all no-ops.
        for (Coll coll : kDataColls)
            for (std::size_t bytes : sizes)
                rep.points.push_back(
                    racePoint(params, pt, coll, p, bytes));
        rep.points.push_back(
            racePoint(params, pt, Coll::Barrier, p, 0));
    }
    return rep;
}

} // namespace coll
} // namespace nowcluster
