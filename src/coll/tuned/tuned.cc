#include "coll/tuned/tuned.hh"

#include <algorithm>
#include <cstring>

#include "base/logging.hh"

namespace nowcluster {
namespace coll {

namespace {

/** Position of the lowest set bit; `levels` for zero. */
int
lowBit(int v, int levels)
{
    if (v == 0)
        return levels;
    int j = 0;
    while (!(v & (1 << j)))
        ++j;
    return j;
}

void
accumulate(std::int64_t *dst, const std::int64_t *src, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] += src[i];
}

} // namespace

TunedCollectives::TunedCollectives(SplitCRuntime &rt)
    : nprocs_(rt.nprocs())
{
    levels_ = 0;
    while ((1 << levels_) < nprocs_)
        ++levels_;
    nodes_ = std::vector<NodeState>(nprocs_);
    for (NodeState &n : nodes_) {
        n.seen.assign(kSlots, 0);
        n.srcSeen.assign(nprocs_, 0);
        n.dissSeen.assign(std::max(levels_, 1), 0);
        n.tourSeen.assign(std::max(levels_, 1), 0);
    }
    point_ = pointFromParams(rt.cluster().params());
    policy_ = CollPolicy::parse(rt.cluster().params().collAlg);
    hSet_ = rt.cluster().registerHandler([](AmNode &, Packet &pkt) {
        *reinterpret_cast<std::int64_t *>(pkt.args[0]) =
            static_cast<std::int64_t>(pkt.args[1]);
    });
    hAdd_ = rt.cluster().registerHandler([](AmNode &, Packet &pkt) {
        ++*reinterpret_cast<std::int64_t *>(pkt.args[0]);
    });
}

std::int64_t
TunedCollectives::enter(SplitC &sc, void *pub)
{
    NodeState &m = mine(sc);
    m.pub = static_cast<std::uint8_t *>(pub);
    barDissemination(sc);
    return ++m.myEpoch;
}

void
TunedCollectives::storeSignal(SplitC &sc, NodeId dst, void *dst_addr,
                              const void *src, std::size_t len,
                              std::int64_t *flag, std::int64_t epoch)
{
    sc.am().store(dst, dst_addr, src, len, hSet_,
                  reinterpret_cast<Word>(flag),
                  static_cast<Word>(epoch));
}

void
TunedCollectives::waitSlot(SplitC &sc, const std::int64_t &slot,
                           std::int64_t epoch, const char *what)
{
    sc.am().pollUntil([&] { return slot >= epoch; }, what);
}

CollAlg
TunedCollectives::select(Coll coll, int nprocs, std::size_t bytes) const
{
    if (auto forced = policy_.forcedFor(coll))
        if (algValid(*forced, nprocs, bytes))
            return *forced;
    return chooseAlg(point_, coll, nprocs, bytes);
}

// ----------------------------------------------------------------------
// Broadcast
// ----------------------------------------------------------------------

void
TunedCollectives::broadcast(SplitC &sc, void *data, std::size_t bytes,
                            NodeId root, CollAlg alg)
{
    panic_if(collOf(alg) != Coll::Broadcast,
             "%s is not a broadcast algorithm", algName(alg));
    const int p = sc.procs();
    if (p <= 1)
        return;
    panic_if(!algValid(alg, p, bytes), "%s invalid for p=%d bytes=%zu",
             algName(alg), p, bytes);
    // Chain-counter snapshot must precede the entry barrier: my
    // predecessor may exit it first, and its first segment's increment
    // can land while I am still blocked inside my own barrier rounds.
    // Before the barrier the counter is quiescent (I consumed all of
    // last epoch's increments before leaving it, and this epoch's
    // senders cannot store until I have entered).
    NodeState &m = mine(sc);
    m.chainBase = m.chainSeen;
    const std::int64_t epoch = enter(sc, data);
    const int rel = (sc.myProc() - root + p) % p;
    auto *d = static_cast<std::uint8_t *>(data);
    switch (alg) {
      case CollAlg::BcastFlat:
        bcastFlat(sc, d, bytes, rel, root, epoch);
        break;
      case CollAlg::BcastBinomial:
        bcastBinomial(sc, d, bytes, rel, root, epoch);
        break;
      case CollAlg::BcastChain:
        bcastChain(sc, d, bytes, rel, root, epoch);
        break;
      case CollAlg::BcastScatterAg:
        bcastScatterAg(sc, d, bytes, rel, root, epoch);
        break;
      default:
        panic("unreachable");
    }
    sc.storeSync();
}

void
TunedCollectives::bcastFlat(SplitC &sc, std::uint8_t *data,
                            std::size_t bytes, int rel, NodeId root,
                            std::int64_t epoch)
{
    const int p = sc.procs();
    if (rel != 0) {
        waitSlot(sc, mine(sc).seen[0], epoch, "flat broadcast");
        return;
    }
    for (int q = 1; q < p; ++q) {
        const NodeId dst = static_cast<NodeId>((q + root) % p);
        storeSignal(sc, dst, nodes_[dst].pub, data, bytes,
                    &nodes_[dst].seen[0], epoch);
    }
}

void
TunedCollectives::bcastBinomial(SplitC &sc, std::uint8_t *data,
                                std::size_t bytes, int rel, NodeId root,
                                std::int64_t epoch)
{
    const int p = sc.procs();
    // Classic binomial, rounds k = levels-1 .. 0: rank `rel` receives
    // from rel - 2^lowBit(rel) in its lowest-set-bit round, and relays
    // to rel + 2^k in every later round k where its bits 0..k are all
    // zero (so each non-root rank is stored to exactly once).
    const int recv_round = lowBit(rel, levels_);
    for (int k = levels_ - 1; k >= 0; --k) {
        if (rel != 0 && k == recv_round)
            waitSlot(sc, mine(sc).seen[0], epoch, "binomial broadcast");
        if ((rel & ((1 << (k + 1)) - 1)) == 0 && rel + (1 << k) < p) {
            const NodeId dst =
                static_cast<NodeId>((rel + (1 << k) + root) % p);
            storeSignal(sc, dst, nodes_[dst].pub, data, bytes,
                        &nodes_[dst].seen[0], epoch);
        }
    }
}

void
TunedCollectives::bcastChain(SplitC &sc, std::uint8_t *data,
                             std::size_t bytes, int rel, NodeId root,
                             std::int64_t epoch)
{
    (void)epoch;
    const int p = sc.procs();
    const std::size_t frag = std::max<std::size_t>(
        sc.am().cluster().params().maxFragment, 1);
    const std::size_t nseg =
        bytes == 0 ? 1 : (bytes + frag - 1) / frag;
    const NodeId succ =
        rel + 1 < p ? static_cast<NodeId>((rel + 1 + root) % p) : -1;
    NodeState &m = mine(sc);
    const std::int64_t base = m.chainBase;
    for (std::size_t s = 0; s < nseg; ++s) {
        const std::size_t off = s * frag;
        const std::size_t len =
            bytes == 0 ? 0 : std::min(frag, bytes - off);
        if (rel > 0) {
            const std::int64_t target =
                base + static_cast<std::int64_t>(s) + 1;
            sc.am().pollUntil([&] { return m.chainSeen >= target; },
                              "chain broadcast");
        }
        if (succ >= 0)
            sc.am().store(succ, nodes_[succ].pub + off, data + off, len,
                          hAdd_,
                          reinterpret_cast<Word>(
                              &nodes_[succ].chainSeen));
    }
}

void
TunedCollectives::bcastScatterAg(SplitC &sc, std::uint8_t *data,
                                 std::size_t bytes, int rel,
                                 NodeId root, std::int64_t epoch)
{
    const int p = sc.procs();
    const std::size_t blk = bytes / p; // >= 1 by algValid.
    auto off = [&](int b) { return static_cast<std::size_t>(b) * blk; };
    auto end = [&](int b) { return b >= p ? bytes : off(b); };
    NodeState &m = mine(sc);

    // Binomial scatter: the holder of block range [lo, hi) splits off
    // [mid, hi) to relative rank mid, straight into its final offset.
    int lo = 0, hi = p;
    for (int k = levels_ - 1; k >= 0 && hi - lo > 1; --k) {
        const int mid = lo + (1 << k);
        if (mid >= hi)
            continue;
        if (rel < mid) {
            if (rel == lo) {
                const NodeId dst = static_cast<NodeId>((mid + root) % p);
                storeSignal(sc, dst, nodes_[dst].pub + off(mid),
                            data + off(mid), end(hi) - off(mid),
                            &nodes_[dst].seen[k], epoch);
            }
            hi = mid;
        } else {
            if (rel == mid)
                waitSlot(sc, m.seen[k], epoch, "scatter");
            lo = mid;
        }
    }

    // Ring allgather of the P scattered blocks (relative ring).
    const NodeId right = static_cast<NodeId>((rel + 1 + root) % p);
    for (int s = 1; s < p; ++s) {
        const int sb = (rel - s + 1 + p) % p;
        const int rb = (rel - s + p) % p;
        storeSignal(sc, right, nodes_[right].pub + off(sb),
                    data + off(sb), end(sb + 1) - off(sb),
                    &nodes_[right].srcSeen[sb], epoch);
        waitSlot(sc, m.srcSeen[rb], epoch, "scatter-ag ring");
    }
}

// ----------------------------------------------------------------------
// All-gather
// ----------------------------------------------------------------------

void
TunedCollectives::allGather(SplitC &sc, const void *my_block,
                            std::size_t block, void *out, CollAlg alg)
{
    panic_if(collOf(alg) != Coll::AllGather,
             "%s is not an all-gather algorithm", algName(alg));
    const int p = sc.procs();
    const int me = sc.myProc();
    auto *o = static_cast<std::uint8_t *>(out);
    if (p <= 1) {
        if (block > 0)
            std::memmove(o, my_block, block);
        return;
    }
    panic_if(!algValid(alg, p, block), "%s invalid for p=%d block=%zu",
             algName(alg), p, block);
    // Seed my own contribution before the entry barrier: Bruck keeps a
    // rotated layout (own block at offset 0) until its final rotation.
    if (block > 0)
        std::memmove(o + (alg == CollAlg::AgBruck
                              ? 0
                              : static_cast<std::size_t>(me) * block),
                     my_block, block);
    const std::int64_t epoch = enter(sc, out);
    switch (alg) {
      case CollAlg::AgRing:
        agRing(sc, block, o, epoch);
        break;
      case CollAlg::AgRecDouble:
        agRecDouble(sc, block, o, epoch);
        break;
      case CollAlg::AgBruck:
        agBruck(sc, block, o, epoch);
        break;
      default:
        panic("unreachable");
    }
    sc.storeSync();
}

void
TunedCollectives::agRing(SplitC &sc, std::size_t block,
                         std::uint8_t *out, std::int64_t epoch)
{
    const int p = sc.procs();
    const int me = sc.myProc();
    const NodeId right = static_cast<NodeId>((me + 1) % p);
    NodeState &m = mine(sc);
    for (int s = 1; s < p; ++s) {
        const int sb = (me - s + 1 + p) % p;
        const int rb = (me - s + p) % p;
        storeSignal(sc, right,
                    nodes_[right].pub +
                        static_cast<std::size_t>(sb) * block,
                    out + static_cast<std::size_t>(sb) * block, block,
                    &nodes_[right].srcSeen[sb], epoch);
        waitSlot(sc, m.srcSeen[rb], epoch, "ring allgather");
    }
}

void
TunedCollectives::agRecDouble(SplitC &sc, std::size_t block,
                              std::uint8_t *out, std::int64_t epoch)
{
    const int p = sc.procs();
    const int me = sc.myProc();
    NodeState &m = mine(sc);
    for (int k = 0; (1 << k) < p; ++k) {
        const NodeId partner = static_cast<NodeId>(me ^ (1 << k));
        const int group = 1 << k;
        const std::size_t base =
            static_cast<std::size_t>((me >> k) << k) * block;
        storeSignal(sc, partner, nodes_[partner].pub + base,
                    out + base, static_cast<std::size_t>(group) * block,
                    &nodes_[partner].seen[k], epoch);
        waitSlot(sc, m.seen[k], epoch, "recursive-doubling allgather");
    }
}

void
TunedCollectives::agBruck(SplitC &sc, std::size_t block,
                          std::uint8_t *out, std::int64_t epoch)
{
    const int p = sc.procs();
    const int me = sc.myProc();
    NodeState &m = mine(sc);
    // Rotated layout: out slot j holds block (me + j) % p. Round k
    // ships slots [0, c) to the node 2^k to the left, landing at slot
    // 2^k -- regions are disjoint across rounds, so no staging.
    for (int k = 0; (1 << k) < p; ++k) {
        const int c = std::min(1 << k, p - (1 << k));
        const NodeId dst =
            static_cast<NodeId>((me - (1 << k) + p) % p);
        storeSignal(sc, dst,
                    nodes_[dst].pub +
                        (static_cast<std::size_t>(1) << k) * block,
                    out, static_cast<std::size_t>(c) * block,
                    &nodes_[dst].seen[k], epoch);
        waitSlot(sc, m.seen[k], epoch, "bruck allgather");
    }
    if (me != 0 && block > 0)
        std::rotate(out,
                    out + static_cast<std::size_t>(p - me) * block,
                    out + static_cast<std::size_t>(p) * block);
}

// ----------------------------------------------------------------------
// All-to-all
// ----------------------------------------------------------------------

void
TunedCollectives::allToAll(SplitC &sc, const void *send,
                           std::size_t block, void *recv, CollAlg alg)
{
    panic_if(collOf(alg) != Coll::AllToAll,
             "%s is not an all-to-all algorithm", algName(alg));
    const int p = sc.procs();
    const int me = sc.myProc();
    const auto *s = static_cast<const std::uint8_t *>(send);
    auto *r = static_cast<std::uint8_t *>(recv);
    if (p <= 1) {
        if (block > 0)
            std::memmove(r, s, block);
        return;
    }
    panic_if(!algValid(alg, p, block), "%s invalid for p=%d block=%zu",
             algName(alg), p, block);
    NodeState &m = mine(sc);
    std::int64_t epoch;
    if (alg == CollAlg::A2aBruck) {
        const std::size_t need =
            std::max<std::size_t>(static_cast<std::size_t>(p) * block,
                                  1);
        // The staging regions are disjoint PER ROUND, so the stage
        // buffer needs the sum over rounds of that round's block
        // count -- which exceeds p*block whenever p > 4 (e.g. p=8
        // ships 4 blocks in each of 3 rounds).
        std::size_t stage_need = 0;
        for (int k = 0; (1 << k) < p; ++k) {
            std::size_t c = 0;
            for (int j = 1; j < p; ++j)
                if ((j >> k) & 1)
                    ++c;
            stage_need += c * block;
        }
        stage_need = std::max<std::size_t>(stage_need, 1);
        if (m.a2aTmp.size() < need)
            m.a2aTmp.resize(need);
        if (m.a2aStage.size() < stage_need)
            m.a2aStage.resize(stage_need);
        if (m.packBuf.size() < need)
            m.packBuf.resize(need);
        // Rotate: tmp slot j = my block for destination (me + j) % p.
        for (int j = 0; j < p && block > 0; ++j)
            std::memcpy(m.a2aTmp.data() +
                            static_cast<std::size_t>(j) * block,
                        s + static_cast<std::size_t>((me + j) % p) *
                                block,
                        block);
        epoch = enter(sc, m.a2aStage.data());
        a2aBruck(sc, s, block, r, epoch);
    } else {
        if (block > 0)
            std::memmove(r + static_cast<std::size_t>(me) * block,
                         s + static_cast<std::size_t>(me) * block,
                         block);
        epoch = enter(sc, recv);
        a2aPairwise(sc, s, block, r, epoch);
    }
    sc.storeSync();
}

void
TunedCollectives::a2aPairwise(SplitC &sc, const std::uint8_t *send,
                              std::size_t block, std::uint8_t *recv,
                              std::int64_t epoch)
{
    (void)recv;
    const int p = sc.procs();
    const int me = sc.myProc();
    NodeState &m = mine(sc);
    for (int s = 1; s < p; ++s) {
        const NodeId dst = static_cast<NodeId>((me + s) % p);
        const NodeId src = static_cast<NodeId>((me - s + p) % p);
        storeSignal(sc, dst,
                    nodes_[dst].pub +
                        static_cast<std::size_t>(me) * block,
                    send + static_cast<std::size_t>(dst) * block,
                    block, &nodes_[dst].srcSeen[me], epoch);
        waitSlot(sc, m.srcSeen[src], epoch, "pairwise all-to-all");
    }
}

void
TunedCollectives::a2aBruck(SplitC &sc, const std::uint8_t *send,
                           std::size_t block, std::uint8_t *recv,
                           std::int64_t epoch)
{
    (void)send;
    const int p = sc.procs();
    const int me = sc.myProc();
    NodeState &m = mine(sc);
    std::uint8_t *tmp = m.a2aTmp.data();
    std::size_t stage_off = 0;
    for (int k = 0; (1 << k) < p; ++k) {
        // Pack every slot whose index has bit k set, in index order.
        std::size_t c = 0;
        for (int j = 1; j < p; ++j) {
            if (!((j >> k) & 1))
                continue;
            if (block > 0)
                std::memcpy(m.packBuf.data() + c * block,
                            tmp + static_cast<std::size_t>(j) * block,
                            block);
            ++c;
        }
        const NodeId dst = static_cast<NodeId>((me + (1 << k)) % p);
        storeSignal(sc, dst, nodes_[dst].pub + stage_off,
                    m.packBuf.data(), c * block, &nodes_[dst].seen[k],
                    epoch);
        waitSlot(sc, m.seen[k], epoch, "bruck all-to-all");
        // Unpack the arrivals back into the same slots.
        std::size_t u = 0;
        for (int j = 1; j < p; ++j) {
            if (!((j >> k) & 1))
                continue;
            if (block > 0)
                std::memcpy(tmp + static_cast<std::size_t>(j) * block,
                            m.a2aStage.data() + stage_off + u * block,
                            block);
            ++u;
        }
        stage_off += c * block;
    }
    // Final inverse rotation: data from source i sits at slot
    // (me - i + p) % p.
    for (int i = 0; i < p && block > 0; ++i)
        std::memcpy(recv + static_cast<std::size_t>(i) * block,
                    tmp + static_cast<std::size_t>((me - i + p) % p) *
                            block,
                    block);
}

// ----------------------------------------------------------------------
// Barrier
// ----------------------------------------------------------------------

void
TunedCollectives::barrier(SplitC &sc, CollAlg alg)
{
    panic_if(collOf(alg) != Coll::Barrier,
             "%s is not a barrier algorithm", algName(alg));
    if (sc.procs() <= 1)
        return;
    switch (alg) {
      case CollAlg::BarFlat:
        barFlat(sc);
        break;
      case CollAlg::BarDissemination:
        barDissemination(sc);
        break;
      case CollAlg::BarTournament:
        barTournament(sc);
        break;
      default:
        panic("unreachable");
    }
}

void
TunedCollectives::barFlat(SplitC &sc)
{
    const int p = sc.procs();
    const int me = sc.myProc();
    NodeState &m = mine(sc);
    const std::int64_t epoch = ++m.myFlatEpoch;
    if (me == 0) {
        // Arrivals accumulate across epochs, so a releasee racing into
        // the next barrier can never be miscounted.
        const std::int64_t target =
            epoch * static_cast<std::int64_t>(p - 1);
        sc.am().pollUntil([&] { return m.barArrived >= target; },
                          "flat barrier");
        for (int q = 1; q < p; ++q)
            sc.am().oneWay(q, hSet_,
                           reinterpret_cast<Word>(
                               &nodes_[q].barRelease),
                           static_cast<Word>(epoch));
    } else {
        sc.am().oneWay(0, hAdd_,
                       reinterpret_cast<Word>(&nodes_[0].barArrived));
        sc.am().pollUntil([&] { return m.barRelease >= epoch; },
                          "flat barrier");
    }
}

void
TunedCollectives::barDissemination(SplitC &sc)
{
    const int p = sc.procs();
    const int me = sc.myProc();
    if (p <= 1)
        return;
    NodeState &m = mine(sc);
    const std::int64_t epoch = ++m.myDissEpoch;
    int round = 0;
    for (int d = 1; d < p; d <<= 1, ++round) {
        const NodeId dst = static_cast<NodeId>((me + d) % p);
        sc.am().oneWay(dst, hSet_,
                       reinterpret_cast<Word>(
                           &nodes_[dst].dissSeen[round]),
                       static_cast<Word>(epoch));
        sc.am().pollUntil([&] { return m.dissSeen[round] >= epoch; },
                          "dissemination barrier");
    }
}

void
TunedCollectives::barTournament(SplitC &sc)
{
    const int p = sc.procs();
    const int me = sc.myProc();
    NodeState &m = mine(sc);
    const std::int64_t epoch = ++m.myTourEpoch;
    const int out_round = lowBit(me, levels_);
    // Elimination rounds: I win every round below my lowest set bit
    // (waiting for that round's loser), then report to the winner that
    // knocks me out.
    for (int k = 0; k < out_round && k < levels_; ++k) {
        const int peer = me + (1 << k);
        if (peer < p)
            waitSlot(sc, m.tourSeen[k], epoch, "tournament barrier");
    }
    if (me != 0) {
        const NodeId win = static_cast<NodeId>(me - (1 << out_round));
        sc.am().oneWay(win, hSet_,
                       reinterpret_cast<Word>(
                           &nodes_[win].tourSeen[out_round]),
                       static_cast<Word>(epoch));
        sc.am().pollUntil([&] { return m.tourRelease >= epoch; },
                          "tournament release");
    }
    // Binomial release down the bracket.
    for (int k = std::min(out_round, levels_) - 1; k >= 0; --k) {
        const int child = me + (1 << k);
        if (child < p)
            sc.am().oneWay(static_cast<NodeId>(child), hSet_,
                           reinterpret_cast<Word>(
                               &nodes_[child].tourRelease),
                           static_cast<Word>(epoch));
    }
}

// ----------------------------------------------------------------------
// All-reduce
// ----------------------------------------------------------------------

void
TunedCollectives::allReduceAdd(SplitC &sc, std::int64_t *vec,
                               std::size_t n, CollAlg alg)
{
    panic_if(collOf(alg) != Coll::AllReduce,
             "%s is not an all-reduce algorithm", algName(alg));
    const int p = sc.procs();
    if (p <= 1)
        return;
    panic_if(!algValid(alg, p, n * sizeof(std::int64_t)),
             "%s invalid for p=%d bytes=%zu", algName(alg), p,
             n * sizeof(std::int64_t));
    NodeState &m = mine(sc);
    const std::size_t need = std::max<std::size_t>(
        static_cast<std::size_t>(levels_ + 2) * std::max<std::size_t>(n, 1),
        1);
    if (m.arStage.size() < need)
        m.arStage.resize(need);
    const std::int64_t epoch = enter(sc, vec);
    switch (alg) {
      case CollAlg::ArBinomial:
        arBinomial(sc, vec, n, epoch);
        break;
      case CollAlg::ArRecDouble:
        arRecDouble(sc, vec, n, epoch);
        break;
      case CollAlg::ArRabenseifner:
        arRabenseifner(sc, vec, n, epoch);
        break;
      default:
        panic("unreachable");
    }
    sc.storeSync();
}

void
TunedCollectives::arBinomial(SplitC &sc, std::int64_t *vec,
                             std::size_t n, std::int64_t epoch)
{
    const int p = sc.procs();
    const int me = sc.myProc();
    NodeState &m = mine(sc);
    const std::size_t vb = n * sizeof(std::int64_t);
    const int out_round = lowBit(me, levels_);
    // Reduce up the binomial tree: round-k parents take their child's
    // vector via a per-round staging region, then fold it in.
    for (int k = 0; k < levels_; ++k) {
        if (k < out_round) {
            const int child = me + (1 << k);
            if (child >= p)
                continue;
            waitSlot(sc, m.seen[k], epoch, "binomial reduce");
            accumulate(vec,
                       m.arStage.data() + static_cast<std::size_t>(k) * n,
                       n);
        } else {
            const NodeId parent =
                static_cast<NodeId>(me - (1 << out_round));
            storeSignal(sc, parent,
                        nodes_[parent].arStage.data() +
                            static_cast<std::size_t>(k) * n,
                        vec, vb, &nodes_[parent].seen[k], epoch);
            break;
        }
    }
    // Binomial broadcast of the totals back down.
    if (me != 0)
        waitSlot(sc, m.seen[levels_ + out_round], epoch,
                 "binomial result");
    for (int k = std::min(out_round, levels_) - 1; k >= 0; --k) {
        const int child = me + (1 << k);
        if (child < p)
            storeSignal(sc, static_cast<NodeId>(child),
                        nodes_[child].pub, vec, vb,
                        &nodes_[child].seen[levels_ + k], epoch);
    }
}

void
TunedCollectives::arRecDouble(SplitC &sc, std::int64_t *vec,
                              std::size_t n, std::int64_t epoch)
{
    const int p = sc.procs();
    const int me = sc.myProc();
    NodeState &m = mine(sc);
    const std::size_t vb = n * sizeof(std::int64_t);
    int p2 = 1;
    while (p2 * 2 <= p)
        p2 *= 2;
    const int rem = p - p2;
    const std::size_t fold_off = static_cast<std::size_t>(levels_) * n;

    if (me >= p2) {
        // Fold my vector into a buddy, then take the finished totals.
        const NodeId buddy = static_cast<NodeId>(me - p2);
        storeSignal(sc, buddy, nodes_[buddy].arStage.data() + fold_off,
                    vec, vb, &nodes_[buddy].seen[62], epoch);
        waitSlot(sc, m.seen[63], epoch, "recursive-doubling result");
        return;
    }
    if (me < rem) {
        waitSlot(sc, m.seen[62], epoch, "recursive-doubling fold");
        accumulate(vec, m.arStage.data() + fold_off, n);
    }
    for (int k = 0; (1 << k) < p2; ++k) {
        const NodeId partner = static_cast<NodeId>(me ^ (1 << k));
        storeSignal(sc, partner,
                    nodes_[partner].arStage.data() +
                        static_cast<std::size_t>(k) * n,
                    vec, vb, &nodes_[partner].seen[k], epoch);
        waitSlot(sc, m.seen[k], epoch, "recursive doubling");
        accumulate(vec,
                   m.arStage.data() + static_cast<std::size_t>(k) * n,
                   n);
    }
    if (me < rem)
        storeSignal(sc, static_cast<NodeId>(me + p2),
                    nodes_[me + p2].pub, vec, vb,
                    &nodes_[me + p2].seen[63], epoch);
}

void
TunedCollectives::arRabenseifner(SplitC &sc, std::int64_t *vec,
                                 std::size_t n, std::int64_t epoch)
{
    const int p = sc.procs();
    const int me = sc.myProc();
    NodeState &m = mine(sc);
    // Reduce-scatter by recursive halving: each round trades away the
    // half of my active segment my partner owns, receiving its half of
    // mine into a per-round staging region.
    std::size_t base = 0, len = n;
    for (int k = 1; (1 << (k - 1)) < p; ++k) {
        const int dist = p >> k;
        const NodeId partner = static_cast<NodeId>(me ^ dist);
        const std::size_t half = len / 2;
        const std::size_t stage_off = n - (n >> (k - 1));
        const bool upper = (me & dist) != 0;
        const std::size_t keep = upper ? base + half : base;
        const std::size_t give = upper ? base : base + half;
        storeSignal(sc, partner,
                    nodes_[partner].arStage.data() + stage_off,
                    vec + give, half * sizeof(std::int64_t),
                    &nodes_[partner].seen[k - 1], epoch);
        waitSlot(sc, m.seen[k - 1], epoch, "reduce-scatter");
        accumulate(vec + keep, m.arStage.data() + stage_off, half);
        base = keep;
        len = half;
    }
    // Mirror allgather: segments double back up, landing directly in
    // their final positions of everyone's vector.
    for (int k = levels_; k >= 1; --k) {
        const int dist = p >> k;
        const NodeId partner = static_cast<NodeId>(me ^ dist);
        storeSignal(sc, partner,
                    nodes_[partner].pub +
                        base * sizeof(std::int64_t),
                    vec + base, len * sizeof(std::int64_t),
                    &nodes_[partner].seen[levels_ + k - 1], epoch);
        waitSlot(sc, m.seen[levels_ + k - 1], epoch,
                 "rabenseifner allgather");
        base = std::min(base, base ^ len);
        len *= 2;
    }
}

// ----------------------------------------------------------------------
// Auto-tuned entry points
// ----------------------------------------------------------------------

void
TunedCollectives::broadcast(SplitC &sc, void *data, std::size_t bytes,
                            NodeId root)
{
    broadcast(sc, data, bytes, root,
              select(Coll::Broadcast, sc.procs(), bytes));
}

void
TunedCollectives::allGather(SplitC &sc, const void *my_block,
                            std::size_t block, void *out)
{
    allGather(sc, my_block, block, out,
              select(Coll::AllGather, sc.procs(), block));
}

void
TunedCollectives::allToAll(SplitC &sc, const void *send,
                           std::size_t block, void *recv)
{
    allToAll(sc, send, block, recv,
             select(Coll::AllToAll, sc.procs(), block));
}

void
TunedCollectives::barrier(SplitC &sc)
{
    barrier(sc, select(Coll::Barrier, sc.procs(), 0));
}

void
TunedCollectives::allReduceAdd(SplitC &sc, std::int64_t *vec,
                               std::size_t n)
{
    allReduceAdd(sc, vec, n,
                 select(Coll::AllReduce, sc.procs(),
                        n * sizeof(std::int64_t)));
}

} // namespace coll
} // namespace nowcluster
