/**
 * @file
 * The tuned collective library: every algorithm the cost model in
 * coll/cost.hh predicts, implemented on the Split-C/Active-Message
 * runtime, plus auto-tuned entry points that pick the predicted-best
 * algorithm per (collective, payload, nprocs) at the cluster's LogGP
 * operating point.
 *
 * Design rules shared by every data collective:
 *
 *  - Bulk-synchronous entry: publish my receive buffer, run a cheap
 *    dissemination barrier, bump the shared epoch. The barrier's
 *    message chain is the cross-shard happens-before edge that makes
 *    the published pointers safe to read under --sim-threads.
 *  - Zero staging wherever possible: payloads are stored directly
 *    into their final position in the destination's output buffer
 *    (per-source or per-round regions are disjoint, so early arrivals
 *    cannot clobber anything). Where an algorithm intrinsically
 *    reuses a buffer across rounds (Bruck all-to-all, the all-reduce
 *    exchanges), arrivals land in per-round staging regions instead,
 *    which removes the need for credit round trips entirely.
 *  - Arrival signaling rides on the store itself: the store's
 *    completion handler (which runs at the receiver after the last
 *    fragment's DMA) sets an epoch slot or bumps a counter, so a
 *    payload costs exactly one message.
 */

#ifndef NOWCLUSTER_COLL_TUNED_TUNED_HH_
#define NOWCLUSTER_COLL_TUNED_TUNED_HH_

#include <cstdint>
#include <vector>

#include "coll/tuned/tuner.hh"
#include "splitc/splitc.hh"

namespace nowcluster {
namespace coll {

/**
 * Per-cluster tuned-collective context. Construct once, outside
 * run(), sharing it across all processors (it registers its signal
 * handlers on the cluster). Buffers grow lazily per node, so no
 * up-front size bound is needed.
 */
class TunedCollectives
{
  public:
    explicit TunedCollectives(SplitCRuntime &rt);

    // ------------------------------------------------------------------
    // Explicit-algorithm entry points
    // ------------------------------------------------------------------

    /** Broadcast `bytes` bytes at `data` from root; everyone returns
     *  with the payload in their own `data`. */
    void broadcast(SplitC &sc, void *data, std::size_t bytes,
                   NodeId root, CollAlg alg);

    /** All-gather: everyone contributes `block` bytes at `mine`; out
     *  receives nprocs*block bytes in rank order. */
    void allGather(SplitC &sc, const void *mine, std::size_t block,
                   void *out, CollAlg alg);

    /** All-to-all: send+i*block goes to processor i; recv+i*block
     *  receives processor i's block for me. */
    void allToAll(SplitC &sc, const void *send, std::size_t block,
                  void *recv, CollAlg alg);

    /** Barrier: no processor returns before all have entered. */
    void barrier(SplitC &sc, CollAlg alg);

    /** Element-wise sum of an n-word vector across all processors;
     *  every processor returns with the totals in vec. */
    void allReduceAdd(SplitC &sc, std::int64_t *vec, std::size_t n,
                      CollAlg alg);

    // ------------------------------------------------------------------
    // Auto-tuned entry points (cost-model argmin, minus any algorithm
    // the policy string pinned)
    // ------------------------------------------------------------------

    void broadcast(SplitC &sc, void *data, std::size_t bytes,
                   NodeId root = 0);
    void allGather(SplitC &sc, const void *mine, std::size_t block,
                   void *out);
    void allToAll(SplitC &sc, const void *send, std::size_t block,
                  void *recv);
    void barrier(SplitC &sc);
    void allReduceAdd(SplitC &sc, std::int64_t *vec, std::size_t n);

    /** The operating point selections are made at. */
    const LogGPPoint &point() const { return point_; }

    /** The policy parsed from the cluster's collAlg parameter. */
    const CollPolicy &policy() const { return policy_; }

    /** What the auto-tuned entry would run for this shape. */
    CollAlg select(Coll coll, int nprocs, std::size_t bytes) const;

  private:
    /** Epoch slots per node; covers 2*ceil(log2 P) rounds plus the
     *  non-power-of-two all-reduce fold/return slots (62, 63). */
    static constexpr int kSlots = 64;

    struct NodeState
    {
        /** Published receive buffer for the current epoch. */
        std::uint8_t *pub = nullptr;
        /** Per-round epoch slots (stores' completion handlers). */
        std::vector<std::int64_t> seen;
        /** Per-source epoch slots (ring/pairwise arrivals). */
        std::vector<std::int64_t> srcSeen;
        /** Cumulative segment counter for the pipelined chain, and
         *  its pre-barrier snapshot (stable only before the entry
         *  barrier -- see broadcast()). */
        std::int64_t chainSeen = 0;
        std::int64_t chainBase = 0;
        /** All-reduce staging: per-round n-word regions + fold. */
        std::vector<std::int64_t> arStage;
        /** Bruck all-to-all rotated working set and its per-round
         *  receive staging. */
        std::vector<std::uint8_t> a2aTmp;
        std::vector<std::uint8_t> a2aStage;
        /** Sender-side pack scratch (safe to reuse: store() copies
         *  the payload before returning). */
        std::vector<std::uint8_t> packBuf;

        // Barrier mailboxes, one set per algorithm so invocations may
        // mix algorithms freely.
        std::int64_t barArrived = 0;  ///< Flat: arrivals at rank 0.
        std::int64_t barRelease = 0;  ///< Flat: release epoch.
        std::vector<std::int64_t> dissSeen;  ///< Per round.
        std::vector<std::int64_t> tourSeen;  ///< Per up-round.
        std::int64_t tourRelease = 0;

        /** This processor's own epoch counters (SPMD lockstep). */
        std::int64_t myEpoch = 0;
        std::int64_t myFlatEpoch = 0;
        std::int64_t myDissEpoch = 0;
        std::int64_t myTourEpoch = 0;
    };

    /** Publish my receive buffer, synchronize, open a new epoch. */
    std::int64_t enter(SplitC &sc, void *pub);

    /** Store with an epoch-slot completion signal at the receiver. */
    void storeSignal(SplitC &sc, NodeId dst, void *dst_addr,
                     const void *src, std::size_t len,
                     std::int64_t *flag, std::int64_t epoch);

    void waitSlot(SplitC &sc, const std::int64_t &slot,
                  std::int64_t epoch, const char *what);

    void bcastFlat(SplitC &sc, std::uint8_t *data, std::size_t bytes,
                   int rel, NodeId root, std::int64_t epoch);
    void bcastBinomial(SplitC &sc, std::uint8_t *data,
                       std::size_t bytes, int rel, NodeId root,
                       std::int64_t epoch);
    void bcastChain(SplitC &sc, std::uint8_t *data, std::size_t bytes,
                    int rel, NodeId root, std::int64_t epoch);
    void bcastScatterAg(SplitC &sc, std::uint8_t *data,
                        std::size_t bytes, int rel, NodeId root,
                        std::int64_t epoch);

    void agRing(SplitC &sc, std::size_t block, std::uint8_t *out,
                std::int64_t epoch);
    void agRecDouble(SplitC &sc, std::size_t block, std::uint8_t *out,
                     std::int64_t epoch);
    void agBruck(SplitC &sc, std::size_t block, std::uint8_t *out,
                 std::int64_t epoch);

    void a2aPairwise(SplitC &sc, const std::uint8_t *send,
                     std::size_t block, std::uint8_t *recv,
                     std::int64_t epoch);
    void a2aBruck(SplitC &sc, const std::uint8_t *send,
                  std::size_t block, std::uint8_t *recv,
                  std::int64_t epoch);

    void barFlat(SplitC &sc);
    void barDissemination(SplitC &sc);
    void barTournament(SplitC &sc);

    void arBinomial(SplitC &sc, std::int64_t *vec, std::size_t n,
                    std::int64_t epoch);
    void arRecDouble(SplitC &sc, std::int64_t *vec, std::size_t n,
                     std::int64_t epoch);
    void arRabenseifner(SplitC &sc, std::int64_t *vec, std::size_t n,
                        std::int64_t epoch);

    NodeState &mine(SplitC &sc) { return nodes_[sc.myProc()]; }

    int nprocs_;
    int levels_;
    std::vector<NodeState> nodes_;
    LogGPPoint point_;
    CollPolicy policy_;
    /** Handler: *(int64*)args[0] = (int64)args[1]. */
    int hSet_;
    /** Handler: ++*(int64*)args[0]. */
    int hAdd_;
};

} // namespace coll
} // namespace nowcluster

#endif // NOWCLUSTER_COLL_TUNED_TUNED_HH_
