/**
 * @file
 * The algorithm registry: which algorithms implement which
 * collective, their printable names, and the validity predicate the
 * tuner consults before considering a candidate (some algorithms are
 * power-of-two-only or need a minimum payload).
 */

#ifndef NOWCLUSTER_COLL_TUNED_REGISTRY_HH_
#define NOWCLUSTER_COLL_TUNED_REGISTRY_HH_

#include <cstddef>
#include <string>
#include <vector>

#include "coll/cost.hh"

namespace nowcluster {
namespace coll {

/** Printable name of a collective ("bcast", "allgather", ...). */
const char *collName(Coll coll);

/** Printable name of an algorithm ("binomial", "ring", ...). */
const char *algName(CollAlg alg);

/** The collective an algorithm belongs to. */
Coll collOf(CollAlg alg);

/** All registered algorithms for one collective. */
const std::vector<CollAlg> &algsFor(Coll coll);

/**
 * Whether an algorithm can run at this operating size. Power-of-two
 * restrictions (recursive-doubling all-gather, Rabenseifner) and
 * minimum payloads (scatter-allgather broadcast needs at least one
 * byte per rank, Rabenseifner one word per rank) live here so the
 * tuner and the validation harness agree.
 */
bool algValid(CollAlg alg, int nprocs, std::size_t bytes);

/**
 * Parse "binomial", "bcast=chain", etc. Returns false if the name
 * does not match any algorithm of the given collective.
 */
bool algFromName(Coll coll, const std::string &name, CollAlg &out);

} // namespace coll
} // namespace nowcluster

#endif // NOWCLUSTER_COLL_TUNED_REGISTRY_HH_
