/**
 * @file
 * The auto-tuner: given a LogGP operating point, pick the
 * predicted-best algorithm for each (collective, payload, nprocs).
 *
 * Selection policy comes from `--coll-alg` / `NOW_COLL_ALG`:
 *
 *   ""         -> Naive: the pre-tuner code paths, untouched.
 *   "naive"    -> same, explicitly.
 *   "tuned"    -> cost-model argmin per invocation.
 *   "bcast=chain,allreduce=rdouble"
 *              -> tuned, with the named collectives pinned to the
 *                 named algorithm (the rest stay cost-model-picked).
 */

#ifndef NOWCLUSTER_COLL_TUNED_TUNER_HH_
#define NOWCLUSTER_COLL_TUNED_TUNER_HH_

#include <array>
#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "coll/cost.hh"
#include "coll/tuned/registry.hh"

namespace nowcluster {
namespace coll {

/** Parsed collective-selection policy. */
struct CollPolicy
{
    enum class Mode { Naive, Tuned };

    Mode mode = Mode::Naive;
    /** Per-collective forced algorithm, indexed by Coll. */
    std::array<std::optional<CollAlg>, kNumColls> forced{};

    bool tuned() const { return mode == Mode::Tuned; }
    std::optional<CollAlg> forcedFor(Coll coll) const
    {
        return forced[static_cast<int>(coll)];
    }

    /** Parse a policy string; panics on unknown tokens. */
    static CollPolicy parse(const std::string &spec);

    /** Canonical string form (round-trips through parse). */
    std::string str() const;
};

/**
 * Predicted-best algorithm among the registered candidates for this
 * collective, honoring validity restrictions.
 */
CollAlg chooseAlg(const LogGPPoint &pt, Coll coll, int nprocs,
                  std::size_t bytes);

/** Predicted-best among an explicit candidate list (must be valid
 *  algorithms of one collective; at least one must pass algValid). */
CollAlg chooseAlgAmong(const LogGPPoint &pt, Coll coll, int nprocs,
                       std::size_t bytes,
                       const std::vector<CollAlg> &candidates);

/** One row of the decision dump. */
struct DecisionRow
{
    Coll coll;
    int nprocs;
    std::size_t bytes;
    CollAlg pick;
    Tick predicted;
};

/** Decision table over a grid (for `nowlab coll table`). */
std::vector<DecisionRow> decisionTable(
    const LogGPPoint &pt, const std::vector<int> &procs,
    const std::vector<std::size_t> &sizes);

/** Human-readable rendering of a decision table. */
std::string renderDecisionTable(const std::vector<DecisionRow> &rows);

} // namespace coll
} // namespace nowcluster

#endif // NOWCLUSTER_COLL_TUNED_TUNER_HH_
