#include "coll/tuned/tuner.hh"

#include <cstdio>
#include <limits>
#include <sstream>

#include "base/logging.hh"

namespace nowcluster {
namespace coll {

namespace {

/** "bcast=chain" -> pin the broadcast algorithm. */
void
applyToken(CollPolicy &policy, const std::string &token)
{
    const auto eq = token.find('=');
    fatal_if(eq == std::string::npos,
             "bad --coll-alg token '%s' (want coll=alg)", token.c_str());
    const std::string coll_name = token.substr(0, eq);
    const std::string alg_name = token.substr(eq + 1);
    for (int c = 0; c < kNumColls; ++c) {
        const Coll coll = static_cast<Coll>(c);
        if (coll_name != collName(coll))
            continue;
        CollAlg alg;
        fatal_if(!algFromName(coll, alg_name, alg),
                 "unknown %s algorithm '%s'", coll_name.c_str(),
                 alg_name.c_str());
        policy.forced[c] = alg;
        return;
    }
    fatal("unknown collective '%s' in --coll-alg", coll_name.c_str());
}

} // namespace

CollPolicy
CollPolicy::parse(const std::string &spec)
{
    CollPolicy policy;
    if (spec.empty() || spec == "naive")
        return policy;
    policy.mode = Mode::Tuned;
    if (spec == "tuned")
        return policy;
    std::size_t start = 0;
    while (start <= spec.size()) {
        std::size_t comma = spec.find(',', start);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string token = spec.substr(start, comma - start);
        if (!token.empty() && token != "tuned")
            applyToken(policy, token);
        start = comma + 1;
    }
    return policy;
}

std::string
CollPolicy::str() const
{
    if (mode == Mode::Naive)
        return "naive";
    std::string out;
    for (int c = 0; c < kNumColls; ++c) {
        if (!forced[c])
            continue;
        if (!out.empty())
            out += ',';
        out += collName(static_cast<Coll>(c));
        out += '=';
        out += algName(*forced[c]);
    }
    return out.empty() ? "tuned" : out;
}

CollAlg
chooseAlg(const LogGPPoint &pt, Coll coll, int nprocs,
          std::size_t bytes)
{
    return chooseAlgAmong(pt, coll, nprocs, bytes, algsFor(coll));
}

CollAlg
chooseAlgAmong(const LogGPPoint &pt, Coll coll, int nprocs,
               std::size_t bytes,
               const std::vector<CollAlg> &candidates)
{
    bool have = false;
    CollAlg best{};
    Tick best_t = std::numeric_limits<Tick>::max();
    for (CollAlg alg : candidates) {
        panic_if(collOf(alg) != coll,
                 "candidate %s is not a %s algorithm", algName(alg),
                 collName(coll));
        if (!algValid(alg, nprocs, bytes))
            continue;
        const Tick t = predictCollective(pt, coll, alg, nprocs, bytes);
        if (!have || t < best_t) {
            have = true;
            best = alg;
            best_t = t;
        }
    }
    panic_if(!have, "no valid %s algorithm for p=%d bytes=%zu",
             collName(coll), nprocs, bytes);
    return best;
}

std::vector<DecisionRow>
decisionTable(const LogGPPoint &pt, const std::vector<int> &procs,
              const std::vector<std::size_t> &sizes)
{
    std::vector<DecisionRow> rows;
    for (int c = 0; c < kNumColls; ++c) {
        const Coll coll = static_cast<Coll>(c);
        for (int p : procs) {
            for (std::size_t b : sizes) {
                DecisionRow row;
                row.coll = coll;
                row.nprocs = p;
                row.bytes = b;
                row.pick = chooseAlg(pt, coll, p, b);
                row.predicted =
                    predictCollective(pt, coll, row.pick, p, b);
                rows.push_back(row);
                if (coll == Coll::Barrier)
                    break; // Payload-independent.
            }
        }
    }
    return rows;
}

std::string
renderDecisionTable(const std::vector<DecisionRow> &rows)
{
    std::ostringstream out;
    out << "collective  nprocs      bytes  algorithm      predicted_us\n";
    for (const DecisionRow &row : rows) {
        char line[128];
        std::snprintf(line, sizeof(line),
                      "%-10s  %6d  %9zu  %-13s  %12.2f\n",
                      collName(row.coll), row.nprocs, row.bytes,
                      algName(row.pick), toUsec(row.predicted));
        out << line;
    }
    return out.str();
}

} // namespace coll
} // namespace nowcluster
