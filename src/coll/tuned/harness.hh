/**
 * @file
 * Predicted-vs-measured validation for the tuned collective library:
 * run every registered algorithm of every collective over a
 * size x nprocs grid on a freshly built cluster, and check that the
 * cost model's pick is (close to) the measured-best algorithm.
 */

#ifndef NOWCLUSTER_COLL_TUNED_HARNESS_HH_
#define NOWCLUSTER_COLL_TUNED_HARNESS_HH_

#include <cstddef>
#include <vector>

#include "coll/tuned/tuner.hh"
#include "net/loggp.hh"

namespace nowcluster {
namespace coll {

/** One algorithm's measured completion span at one grid point. */
struct AlgMeasurement
{
    CollAlg alg;
    Tick predicted = 0;
    Tick measured = 0;
};

/** One (collective, nprocs, bytes) grid point. */
struct GridPoint
{
    Coll coll;
    int nprocs = 0;
    std::size_t bytes = 0;
    std::vector<AlgMeasurement> algs; ///< Every valid algorithm.
    CollAlg predictedPick;            ///< Cost-model argmin.
    CollAlg measuredBest;             ///< Measured argmin.
    Tick measuredOfPick = 0;
    Tick measuredOfBest = 0;

    /** Did the model's pick land within tol of the measured best? */
    bool
    within(double tol) const
    {
        return static_cast<double>(measuredOfPick) <=
               (1.0 + tol) * static_cast<double>(measuredOfBest);
    }
};

/** A full validation sweep at one LogGP operating point. */
struct ValidationReport
{
    std::vector<GridPoint> points;

    int hits(double tol) const;
    double hitRate(double tol) const;
};

/**
 * Measured completion span (entry barrier to last processor done) of
 * one collective invocation, after a warm-up call, on a fresh cluster
 * built from `params`. `bytes` follows predictCollective()'s payload
 * semantics.
 */
Tick measureCollective(const LogGPParams &params, Coll coll,
                       CollAlg alg, int nprocs, std::size_t bytes,
                       std::uint64_t seed = 1);

/**
 * Race predicted vs measured for every registered algorithm over the
 * procs x sizes grid (barrier measured once per nprocs).
 */
ValidationReport validateGrid(const LogGPParams &params,
                              const std::vector<int> &procs,
                              const std::vector<std::size_t> &sizes);

} // namespace coll
} // namespace nowcluster

#endif // NOWCLUSTER_COLL_TUNED_HARNESS_HH_
