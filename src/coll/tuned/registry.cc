#include "coll/tuned/registry.hh"

#include "base/logging.hh"

namespace nowcluster {
namespace coll {

namespace {

bool
isPow2(int p)
{
    return p > 0 && (p & (p - 1)) == 0;
}

} // namespace

const char *
collName(Coll coll)
{
    switch (coll) {
      case Coll::Broadcast: return "bcast";
      case Coll::AllGather: return "allgather";
      case Coll::AllToAll: return "alltoall";
      case Coll::Barrier: return "barrier";
      case Coll::AllReduce: return "allreduce";
    }
    panic("unknown collective");
}

const char *
algName(CollAlg alg)
{
    switch (alg) {
      case CollAlg::BcastFlat: return "flat";
      case CollAlg::BcastBinomial: return "binomial";
      case CollAlg::BcastChain: return "chain";
      case CollAlg::BcastScatterAg: return "scatter-ag";
      case CollAlg::AgRing: return "ring";
      case CollAlg::AgRecDouble: return "rdouble";
      case CollAlg::AgBruck: return "bruck";
      case CollAlg::A2aPairwise: return "pairwise";
      case CollAlg::A2aBruck: return "bruck";
      case CollAlg::BarFlat: return "flat";
      case CollAlg::BarDissemination: return "dissemination";
      case CollAlg::BarTournament: return "tournament";
      case CollAlg::ArBinomial: return "binomial";
      case CollAlg::ArRecDouble: return "rdouble";
      case CollAlg::ArRabenseifner: return "rabenseifner";
    }
    panic("unknown algorithm");
}

Coll
collOf(CollAlg alg)
{
    switch (alg) {
      case CollAlg::BcastFlat:
      case CollAlg::BcastBinomial:
      case CollAlg::BcastChain:
      case CollAlg::BcastScatterAg:
        return Coll::Broadcast;
      case CollAlg::AgRing:
      case CollAlg::AgRecDouble:
      case CollAlg::AgBruck:
        return Coll::AllGather;
      case CollAlg::A2aPairwise:
      case CollAlg::A2aBruck:
        return Coll::AllToAll;
      case CollAlg::BarFlat:
      case CollAlg::BarDissemination:
      case CollAlg::BarTournament:
        return Coll::Barrier;
      case CollAlg::ArBinomial:
      case CollAlg::ArRecDouble:
      case CollAlg::ArRabenseifner:
        return Coll::AllReduce;
    }
    panic("unknown algorithm");
}

const std::vector<CollAlg> &
algsFor(Coll coll)
{
    static const std::vector<CollAlg> bcast = {
        CollAlg::BcastFlat, CollAlg::BcastBinomial, CollAlg::BcastChain,
        CollAlg::BcastScatterAg};
    static const std::vector<CollAlg> allgather = {
        CollAlg::AgRing, CollAlg::AgRecDouble, CollAlg::AgBruck};
    static const std::vector<CollAlg> alltoall = {
        CollAlg::A2aPairwise, CollAlg::A2aBruck};
    static const std::vector<CollAlg> barrier = {
        CollAlg::BarFlat, CollAlg::BarDissemination,
        CollAlg::BarTournament};
    static const std::vector<CollAlg> allreduce = {
        CollAlg::ArBinomial, CollAlg::ArRecDouble,
        CollAlg::ArRabenseifner};
    switch (coll) {
      case Coll::Broadcast: return bcast;
      case Coll::AllGather: return allgather;
      case Coll::AllToAll: return alltoall;
      case Coll::Barrier: return barrier;
      case Coll::AllReduce: return allreduce;
    }
    panic("unknown collective");
}

bool
algValid(CollAlg alg, int nprocs, std::size_t bytes)
{
    switch (alg) {
      case CollAlg::AgRecDouble:
      case CollAlg::ArRabenseifner:
        if (!isPow2(nprocs))
            return false;
        break;
      default:
        break;
    }
    if (alg == CollAlg::BcastScatterAg &&
        bytes < static_cast<std::size_t>(nprocs))
        return false;
    if (alg == CollAlg::ArRabenseifner) {
        // Recursive halving needs uniform word segments: a vector of
        // at least one word per processor, evenly divisible.
        const std::size_t words = bytes / 8;
        if (bytes < 8 * static_cast<std::size_t>(nprocs) ||
            words % static_cast<std::size_t>(nprocs) != 0)
            return false;
    }
    return true;
}

bool
algFromName(Coll coll, const std::string &name, CollAlg &out)
{
    for (CollAlg alg : algsFor(coll)) {
        if (name == algName(alg)) {
            out = alg;
            return true;
        }
    }
    return false;
}

} // namespace coll
} // namespace nowcluster
