/**
 * @file
 * A collective-communication library on the Split-C runtime, including
 * the LogP model's original application: *optimal broadcast tree*
 * construction from the machine's (o, g, L) parameters (Culler et al.,
 * "LogP: Towards a Realistic Model of Parallel Computation"). Under
 * LogP the best broadcast is not a fixed binomial tree: each holder of
 * the value keeps transmitting at interval max(o, g), and every
 * transmission is aimed at the receiver that can be reached earliest.
 *
 * The library provides broadcast (binomial / logp-optimal / linear),
 * all-gather (ring / recursive doubling), pairwise-exchange all-to-all,
 * and a Kogge-Stone prefix scan -- each validated against references
 * in the tests and raced against each other in
 * bench_ablation_collectives.
 */

#ifndef NOWCLUSTER_COLL_COLLECTIVES_HH_
#define NOWCLUSTER_COLL_COLLECTIVES_HH_

#include <cstdint>
#include <vector>

#include "model/models.hh"
#include "splitc/splitc.hh"

namespace nowcluster {

/** One edge of a broadcast schedule. */
struct BroadcastStep
{
    NodeId sender;
    NodeId receiver;
    /** Model time the send is issued (diagnostic; execution is
     *  data-driven). */
    Tick issueAt;
};

/**
 * Build the LogP-greedy-optimal broadcast schedule for P processors
 * rooted at 0: repeatedly assign the earliest possible reception to
 * the earliest available transmission slot.
 *
 * @param send_interval  Time between consecutive sends by one node,
 *                       max(o_send, g) under LogP.
 * @param arrival_cost   Send-to-usable delay, o_send + L + o_recv.
 */
std::vector<BroadcastStep>
buildOptimalBroadcast(int nprocs, Tick send_interval, Tick arrival_cost);

/** Predicted completion time of a schedule under the same model. */
Tick predictedBroadcastCompletion(const std::vector<BroadcastStep> &steps,
                                  Tick arrival_cost);

/** Broadcast algorithm selector. */
enum class BcastAlg
{
    Linear,      ///< Root sends to everyone in turn.
    Binomial,    ///< Classic log P tree.
    LogPOptimal, ///< Greedy schedule from the machine parameters.
};

/** All-gather algorithm selector. */
enum class GatherAlg
{
    Ring,             ///< P-1 neighbor steps, bandwidth-friendly.
    RecursiveDoubling ///< log P steps, latency-friendly.
};

/** Barrier algorithm selector. */
enum class BarrierAlg
{
    Flat,          ///< Counter at rank 0 + linear release; O(P) at root.
    Dissemination, ///< ceil(log2 P) rounds of distance-2^r signals.
    Auto,          ///< Cost-model argmin (see Collectives::setCostPoint),
                   ///< falling back to Dissemination for P > 64 and
                   ///< Flat below when no operating point is set.
};

/**
 * Per-cluster collective context: owns the per-node mailboxes the
 * algorithms communicate through. Construct once (outside run()) and
 * share across all processors, like an application's node state.
 */
class Collectives
{
  public:
    /**
     * @param nprocs     Number of processors.
     * @param max_elems  Largest per-processor element count any
     *                   collective call will use.
     */
    Collectives(int nprocs, std::size_t max_elems);

    /** Broadcast a word from root to all; returns the value. */
    Word broadcast(SplitC &sc, Word value, NodeId root, BcastAlg alg);

    /**
     * All-gather: every processor contributes n words; out receives
     * nprocs*n words in rank order.
     */
    void allGather(SplitC &sc, const Word *mine, std::size_t n,
                   Word *out, GatherAlg alg);

    /**
     * Pairwise-exchange all-to-all: send[i*n..] goes to processor i;
     * recv[i*n..] receives from processor i.
     */
    void allToAll(SplitC &sc, const Word *send, std::size_t n,
                  Word *recv);

    /** Inclusive prefix sum (Kogge-Stone / Hillis-Steele). */
    std::int64_t scanAdd(SplitC &sc, std::int64_t value);

    /**
     * Barrier across all processors. Auto picks the dissemination
     * algorithm above 64 processors -- at 1024 nodes the flat
     * barrier's O(P) serialization at rank 0 dominates whole runs --
     * and the flat one below, where its two network hops beat the
     * dissemination rounds. Both provide identical semantics: no
     * processor returns before every processor has entered.
     */
    void barrier(SplitC &sc, BarrierAlg alg = BarrierAlg::Auto);

    /**
     * Set the broadcast schedule parameters used by LogPOptimal (call
     * before run(); defaults to the Berkeley NOW numbers).
     */
    void setModel(Tick send_interval, Tick arrival_cost);

    /**
     * Supply the cluster's calibrated LogGP operating point (call
     * before run()). Once set, BarrierAlg::Auto resolves by comparing
     * the cost model's flat-vs-dissemination predictions at the actual
     * processor count instead of the fixed P > 64 rule of thumb.
     */
    void setCostPoint(const LogGPPoint &pt);

    /** The concrete algorithm BarrierAlg::Auto resolves to for p. */
    BarrierAlg resolveBarrier(int p) const;

  private:
    struct NodeState
    {
        /** Broadcast mailbox: value + epoch flag. */
        Word bcastVal = 0;
        std::int64_t bcastSeen = 0;
        /** Gather/all-to-all mailboxes: [src * maxElems + i]. */
        std::vector<Word> box;
        /** Per-source arrival generation counters. */
        std::vector<std::int64_t> boxSeen;
        /** Scan mailbox per tree level. */
        std::vector<std::int64_t> scanVal;
        std::vector<std::int64_t> scanSeen;
        /** Barrier mailboxes: per-round dissemination flags, plus the
         *  flat barrier's arrival counter and release flag (rank 0
         *  owns the counter). */
        std::vector<std::int64_t> barSeen;
        std::int64_t barArrived = 0;
        std::int64_t barRelease = 0;
        /** This processor's own epoch counters (SPMD lockstep). */
        std::int64_t myBcastEpoch = 0;
        std::int64_t myGatherEpoch = 0;
        std::int64_t myScanEpoch = 0;
        std::int64_t myBarEpoch = 0;
    };

    int nprocs_;
    std::size_t maxElems_;
    std::vector<NodeState> nodes_;
    std::vector<std::vector<NodeId>> optTargets_; ///< Per sender, in order.
    Tick sendInterval_;
    Tick arrivalCost_;
    LogGPPoint costPoint_; ///< Invalid until setCostPoint().

    /** (Re)build the LogP-optimal schedule; eager so the collectives
     *  never mutate shared state lazily mid-run (the sharded engine
     *  would race on it). */
    void buildSchedule();
};

} // namespace nowcluster

#endif // NOWCLUSTER_COLL_COLLECTIVES_HH_
