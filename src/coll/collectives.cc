#include "coll/collectives.hh"

#include <algorithm>
#include <queue>

#include "base/logging.hh"
#include "coll/cost.hh"

namespace nowcluster {

std::vector<BroadcastStep>
buildOptimalBroadcast(int nprocs, Tick send_interval, Tick arrival_cost)
{
    // Degenerate sizes need no schedule (and no model): accept them
    // before validating the parameters.
    std::vector<BroadcastStep> steps;
    if (nprocs <= 1)
        return steps;
    panic_if(send_interval <= 0 || arrival_cost <= 0,
             "broadcast schedule needs positive model parameters");

    // Min-heap of (next free transmission slot, node). Greedy: the
    // next reception always uses the earliest available slot, and new
    // holders immediately start transmitting themselves.
    using Slot = std::pair<Tick, NodeId>;
    std::priority_queue<Slot, std::vector<Slot>, std::greater<>> free;
    free.push({0, 0});
    NodeId next_rank = 1;
    while (next_rank < nprocs) {
        auto [t, sender] = free.top();
        free.pop();
        NodeId receiver = next_rank++;
        steps.push_back({sender, receiver, t});
        free.push({t + send_interval, sender});
        free.push({t + arrival_cost, receiver});
    }
    return steps;
}

Tick
predictedBroadcastCompletion(const std::vector<BroadcastStep> &steps,
                             Tick arrival_cost)
{
    if (steps.empty())
        return 0; // A one-processor broadcast completes instantly.
    Tick done = 0;
    for (const BroadcastStep &s : steps)
        done = std::max(done, s.issueAt + arrival_cost);
    return done;
}

Collectives::Collectives(int nprocs, std::size_t max_elems)
    : nprocs_(nprocs), maxElems_(std::max<std::size_t>(max_elems, 1)),
      nodes_(nprocs)
{
    int levels = 0;
    while ((1 << levels) < nprocs)
        ++levels;
    for (NodeState &n : nodes_) {
        n.box.assign(static_cast<std::size_t>(nprocs) * maxElems_, 0);
        n.boxSeen.assign(nprocs, 0);
        n.scanVal.assign(std::max(levels, 1), 0);
        n.scanSeen.assign(std::max(levels, 1), 0);
        n.barSeen.assign(std::max(levels, 1), 0);
    }
    // Default model: Berkeley NOW numbers.
    auto p = MachineConfig::berkeleyNow().params;
    sendInterval_ = std::max(p.oSend, p.gap);
    arrivalCost_ = p.oSend + p.latency + p.oRecv;
    buildSchedule();
}

void
Collectives::setModel(Tick send_interval, Tick arrival_cost)
{
    sendInterval_ = send_interval;
    arrivalCost_ = arrival_cost;
    buildSchedule();
}

void
Collectives::setCostPoint(const LogGPPoint &pt)
{
    costPoint_ = pt;
}

BarrierAlg
Collectives::resolveBarrier(int p) const
{
    if (p <= 1)
        return BarrierAlg::Flat;
    if (!costPoint_.valid) {
        // No calibrated operating point: fall back to the rule of
        // thumb (the flat barrier's O(P) hotspot at rank 0 dominates
        // well before 1024 nodes; its two hops win at small P).
        return p > 64 ? BarrierAlg::Dissemination : BarrierAlg::Flat;
    }
    const Tick flat = coll::predictCollective(
        costPoint_, coll::Coll::Barrier, coll::CollAlg::BarFlat, p, 0);
    const Tick diss = coll::predictCollective(
        costPoint_, coll::Coll::Barrier, coll::CollAlg::BarDissemination,
        p, 0);
    return diss < flat ? BarrierAlg::Dissemination : BarrierAlg::Flat;
}

void
Collectives::buildSchedule()
{
    optTargets_.assign(nprocs_, {});
    auto steps =
        buildOptimalBroadcast(nprocs_, sendInterval_, arrivalCost_);
    // Steps come out ordered by issue time per sender (the greedy
    // assigns each sender's slots in time order).
    for (const BroadcastStep &s : steps)
        optTargets_[s.sender].push_back(s.receiver);
}

Word
Collectives::broadcast(SplitC &sc, Word value, NodeId root, BcastAlg alg)
{
    const int p = sc.procs();
    const int me = sc.myProc();
    if (p <= 1)
        return value;
    // Bulk-synchronous entry: the barrier doubles as the guarantee
    // that everyone consumed the previous epoch's mailbox.
    sc.barrier();
    const std::int64_t epoch = ++nodes_[me].myBcastEpoch;

    const int rel = (me - root + p) % p;
    Word v = value;

    // Note: no sync inside deliver_to -- the whole point of the LogP
    // schedule is that a holder pipelines its transmissions at the
    // send interval instead of waiting out a round trip per target.
    auto deliver_to = [&](int rel_dst, Word w) {
        NodeId dst = static_cast<NodeId>((rel_dst + root) % p);
        sc.put(gptr(dst, &nodes_[dst].bcastVal), w);
        sc.put(gptr(dst, &nodes_[dst].bcastSeen), epoch);
    };
    auto wait_value = [&]() {
        NodeState &mine = nodes_[me];
        const Tick t0 = sc.am().now();
        sc.am().pollUntil([&] { return mine.bcastSeen >= epoch; },
                          "broadcast");
        if (sc.am().obs())
            sc.am().obs()->containerSpan(sc.am().id(),
                                         SpanCat::BarrierWait, t0,
                                         sc.am().now());
        return mine.bcastVal;
    };

    switch (alg) {
      case BcastAlg::Linear:
        if (rel == 0) {
            for (int q = 1; q < p; ++q)
                deliver_to(q, v);
        } else {
            v = wait_value();
        }
        break;

      case BcastAlg::Binomial: {
        int levels = 0;
        while ((1 << levels) < p)
            ++levels;
        bool have = rel == 0;
        for (int k = levels - 1; k >= 0; --k) {
            if (!have && rel >= (1 << k) && rel < (1 << (k + 1))) {
                v = wait_value();
                have = true;
            } else if (have && !(rel & (1 << k)) &&
                       rel + (1 << k) < p) {
                deliver_to(rel + (1 << k), v);
            }
        }
        break;
      }

      case BcastAlg::LogPOptimal:
        if (rel != 0)
            v = wait_value();
        for (NodeId t : optTargets_[rel])
            deliver_to(t, v);
        break;
    }
    sc.sync(); // Collect the acks of everything we pipelined.
    return v;
}

void
Collectives::allGather(SplitC &sc, const Word *mine, std::size_t n,
                       Word *out, GatherAlg alg)
{
    const int p = sc.procs();
    const int me = sc.myProc();
    panic_if(n > maxElems_, "allGather exceeds the context's max_elems");
    if (p <= 1) {
        std::copy(mine, mine + n, out);
        return;
    }
    sc.barrier();
    const std::int64_t epoch = ++nodes_[me].myGatherEpoch;

    std::copy(mine, mine + n, out + static_cast<std::size_t>(me) * n);

    auto send_block = [&](NodeId dst, int src_block, const Word *data) {
        NodeState &d = nodes_[dst];
        sc.am().store(dst,
                      &d.box[static_cast<std::size_t>(src_block) *
                             maxElems_],
                      data, n * sizeof(Word));
        sc.put(gptr(dst, &d.boxSeen[src_block]), epoch);
        sc.sync();
    };
    auto wait_block = [&](int src_block) {
        NodeState &m = nodes_[me];
        const Tick t0 = sc.am().now();
        sc.am().pollUntil(
            [&] { return m.boxSeen[src_block] >= epoch; },
            "exchange wait");
        if (sc.am().obs())
            sc.am().obs()->containerSpan(sc.am().id(),
                                         SpanCat::BarrierWait, t0,
                                         sc.am().now());
        std::copy(&m.box[static_cast<std::size_t>(src_block) *
                         maxElems_],
                  &m.box[static_cast<std::size_t>(src_block) *
                         maxElems_] + n,
                  out + static_cast<std::size_t>(src_block) * n);
    };

    if (alg == GatherAlg::RecursiveDoubling && (p & (p - 1)) == 0) {
        // Exchange ever-larger block groups with XOR partners.
        for (int k = 0; (1 << k) < p; ++k) {
            int partner = me ^ (1 << k);
            int group = 1 << k;
            int my_base = (me / group) * group;
            int partner_base = (partner / group) * group;
            for (int b = my_base; b < my_base + group; ++b)
                send_block(partner, b,
                           out + static_cast<std::size_t>(b) * n);
            for (int b = partner_base; b < partner_base + group; ++b)
                wait_block(b);
        }
        return;
    }

    // Ring: every step, pass along the block received last step.
    int right = (me + 1) % p;
    for (int s = 1; s < p; ++s) {
        int send_src = (me - s + 1 + p) % p;
        int recv_src = (me - s + p) % p;
        send_block(right, send_src,
                   out + static_cast<std::size_t>(send_src) * n);
        wait_block(recv_src);
    }
}

void
Collectives::allToAll(SplitC &sc, const Word *send, std::size_t n,
                      Word *recv)
{
    const int p = sc.procs();
    const int me = sc.myProc();
    panic_if(n > maxElems_, "allToAll exceeds the context's max_elems");
    if (p <= 1) {
        std::copy(send, send + n, recv);
        return;
    }
    sc.barrier();
    const std::int64_t epoch = ++nodes_[me].myGatherEpoch;

    std::copy(send + static_cast<std::size_t>(me) * n,
              send + static_cast<std::size_t>(me) * n + n,
              recv + static_cast<std::size_t>(me) * n);

    // Rotation pairwise exchange: works for any P.
    for (int s = 1; s < p; ++s) {
        NodeId dst = static_cast<NodeId>((me + s) % p);
        NodeId src = static_cast<NodeId>((me - s + p) % p);
        NodeState &d = nodes_[dst];
        sc.am().store(dst,
                      &d.box[static_cast<std::size_t>(me) * maxElems_],
                      send + static_cast<std::size_t>(dst) * n,
                      n * sizeof(Word));
        sc.put(gptr(dst, &d.boxSeen[me]), epoch);
        sc.sync();
        NodeState &m = nodes_[me];
        sc.am().pollUntil([&] { return m.boxSeen[src] >= epoch; },
                          "exchange wait");
        std::copy(
            &m.box[static_cast<std::size_t>(src) * maxElems_],
            &m.box[static_cast<std::size_t>(src) * maxElems_] + n,
            recv + static_cast<std::size_t>(src) * n);
    }
}

void
Collectives::barrier(SplitC &sc, BarrierAlg alg)
{
    const int p = sc.procs();
    const int me = sc.myProc();
    if (p == 1)
        return;
    if (alg == BarrierAlg::Auto)
        alg = resolveBarrier(p);

    NodeState &mine = nodes_[me];
    const std::int64_t epoch = ++mine.myBarEpoch;
    const Tick t0 = sc.am().now();

    if (alg == BarrierAlg::Flat) {
        if (me == 0) {
            // Epochs accumulate in the counter, so arrivals from the
            // next epoch (a releasee racing ahead) can never be
            // mistaken for this one.
            sc.am().pollUntil(
                [&] {
                    return mine.barArrived >=
                           epoch * static_cast<std::int64_t>(p - 1);
                },
                "flat barrier");
            for (int q = 1; q < p; ++q)
                sc.put(gptr(q, &nodes_[q].barRelease), epoch);
            sc.sync();
        } else {
            sc.fetchAdd(gptr(0, &nodes_[0].barArrived),
                        std::int64_t{1});
            sc.am().pollUntil([&] { return mine.barRelease >= epoch; },
                              "flat barrier");
        }
    } else {
        // Dissemination: in round r, signal the processor 2^r to the
        // right and wait for the one 2^r to the left. After
        // ceil(log2 P) rounds every processor transitively depends on
        // every other -- same guarantee as the flat barrier with no
        // O(P) hotspot.
        int round = 0;
        for (int d = 1; d < p; d <<= 1, ++round) {
            NodeId dst = static_cast<NodeId>((me + d) % p);
            sc.put(gptr(dst, &nodes_[dst].barSeen[round]), epoch);
            sc.sync();
            sc.am().pollUntil(
                [&] { return mine.barSeen[round] >= epoch; },
                "dissemination barrier");
        }
    }
    if (sc.am().obs())
        sc.am().obs()->containerSpan(sc.am().id(), SpanCat::BarrierWait,
                                     t0, sc.am().now());
}

std::int64_t
Collectives::scanAdd(SplitC &sc, std::int64_t value)
{
    const int p = sc.procs();
    const int me = sc.myProc();
    if (p <= 1)
        return value;
    sc.barrier();
    const std::int64_t epoch = ++nodes_[me].myScanEpoch;

    std::int64_t partial = value;
    int level = 0;
    for (int d = 1; d < p; d *= 2, ++level) {
        // Kogge-Stone: send my partial d to the right, take from the
        // left, every processor at every level.
        if (me + d < p) {
            NodeState &dst = nodes_[me + d];
            sc.put(gptr(me + d, &dst.scanVal[level]), partial);
            sc.put(gptr(me + d, &dst.scanSeen[level]), epoch);
            sc.sync();
        }
        if (me - d >= 0) {
            NodeState &mine = nodes_[me];
            sc.am().pollUntil(
                [&] { return mine.scanSeen[level] >= epoch; },
                "scan wait");
            partial += mine.scanVal[level];
        }
    }
    return partial;
}

} // namespace nowcluster
