#include "coll/cost.hh"

#include <algorithm>

#include "base/logging.hh"

namespace nowcluster {
namespace coll {

namespace {

int
ceilLog2(int p)
{
    int levels = 0;
    while ((1 << levels) < p)
        ++levels;
    return levels;
}

int
floorPow2(int p)
{
    int v = 1;
    while (v * 2 <= p)
        v *= 2;
    return v;
}

std::size_t
fragsOf(const LogGPPoint &pt, std::size_t bytes)
{
    const std::size_t frag = std::max<std::size_t>(pt.fragment, 1);
    return bytes == 0 ? 1 : (bytes + frag - 1) / frag;
}

/** Wire time from injection start to last-fragment arrival. */
Tick
wireTime(const LogGPPoint &pt, std::size_t bytes)
{
    if (bytes == 0)
        return pt.latency + pt.occupancy;
    const Tick dma = static_cast<Tick>(
        static_cast<double>(bytes) * pt.gPerByte);
    const Tick interFrag =
        static_cast<Tick>(fragsOf(pt, bytes) - 1) * pt.gap;
    return dma + interFrag + pt.latency + pt.occupancy;
}

Tick
predictBroadcast(const LogGPPoint &pt, CollAlg alg, int p,
                 std::size_t b)
{
    const int lg = ceilLog2(p);
    switch (alg) {
      case CollAlg::BcastFlat:
        // Root serializes P-1 sends at max(host, NIC) pace; the last
        // one then crosses the wire.
        return static_cast<Tick>(p - 2) *
                   std::max(pt.oSend, txSlot(pt, b)) +
               msgTime(pt, b);
      case CollAlg::BcastBinomial:
        // Critical path: the chain of first-child relays, depth
        // ceil(log2 P), each a full store end to end.
        return static_cast<Tick>(lg) * msgTime(pt, b);
      case CollAlg::BcastChain: {
        // Fragment-size segments pipeline down the rank chain: the
        // first segment pays P-1 full hops, every further segment one
        // steady-state relay interval (host recv+send or NIC slot,
        // whichever is slower).
        const std::size_t frag = std::max<std::size_t>(pt.fragment, 1);
        const std::size_t nseg = fragsOf(pt, b);
        const std::size_t seg = std::min(b == 0 ? frag : b, frag);
        const Tick interval = std::max(txSlot(pt, seg),
                                       pt.oRecv + pt.oSend);
        return static_cast<Tick>(p - 1) * msgTime(pt, seg) +
               static_cast<Tick>(nseg - 1) * interval;
      }
      case CollAlg::BcastScatterAg: {
        // Binomial scatter of halving payloads, then a ring allgather
        // of the P scattered blocks (van de Geijn).
        const std::size_t block = std::max<std::size_t>(b / p, 1);
        Tick t = 0;
        for (int k = 1; k <= lg; ++k)
            t += msgTime(pt, std::max<std::size_t>(b >> k, 1));
        return t + static_cast<Tick>(p - 1) * msgTime(pt, block);
      }
      default:
        panic("not a broadcast algorithm");
    }
}

Tick
predictAllGather(const LogGPPoint &pt, CollAlg alg, int p,
                 std::size_t b)
{
    switch (alg) {
      case CollAlg::AgRing:
        // Every round each node forwards the block it just received:
        // P-1 serialized hops.
        return static_cast<Tick>(p - 1) * msgTime(pt, b);
      case CollAlg::AgRecDouble: {
        // XOR exchanges of doubling block groups.
        Tick t = 0;
        for (int k = 0; (1 << k) < p; ++k)
            t += msgTime(pt, b << k);
        return t;
      }
      case CollAlg::AgBruck: {
        // Distance-2^k exchanges of min(2^k, P - 2^k) blocks; the
        // trailing local rotation is free.
        Tick t = 0;
        for (int k = 0; (1 << k) < p; ++k) {
            const int blocks = std::min(1 << k, p - (1 << k));
            t += msgTime(pt, b * static_cast<std::size_t>(blocks));
        }
        return t;
      }
      default:
        panic("not an all-gather algorithm");
    }
}

Tick
predictAllToAll(const LogGPPoint &pt, CollAlg alg, int p,
                std::size_t b)
{
    switch (alg) {
      case CollAlg::A2aPairwise:
        return static_cast<Tick>(p - 1) * msgTime(pt, b);
      case CollAlg::A2aBruck: {
        // Round k ships every staged block whose index has bit k set,
        // packed into one store per round (arrivals land in disjoint
        // per-round staging, so rounds chain back to back).
        Tick t = 0;
        for (int k = 0; (1 << k) < p; ++k) {
            int blocks = 0;
            for (int j = 1; j < p; ++j)
                blocks += (j >> k) & 1;
            t += msgTime(pt, b * static_cast<std::size_t>(blocks));
        }
        return t;
      }
      default:
        panic("not an all-to-all algorithm");
    }
}

Tick
predictBarrier(const LogGPPoint &pt, CollAlg alg, int p)
{
    const int lg = ceilLog2(p);
    switch (alg) {
      case CollAlg::BarFlat:
        // P-1 arrivals serialize on the root's host; the release fan
        // serializes on its send side.
        return msgTime(pt, 0) +
               static_cast<Tick>(p - 1) * std::max(pt.oRecv, pt.gap) +
               static_cast<Tick>(p - 2) * std::max(pt.oSend, pt.gap) +
               msgTime(pt, 0);
      case CollAlg::BarDissemination:
        // Each round: signal 2^r right, wait on 2^r left. Host pays a
        // send and a receive per round on top of the signal flight.
        return static_cast<Tick>(lg) *
               (msgTime(pt, 0) + pt.oSend + pt.oRecv);
      case CollAlg::BarTournament:
        // log P elimination rounds up, binomial release down.
        return 2 * static_cast<Tick>(lg) * msgTime(pt, 0);
      default:
        panic("not a barrier algorithm");
    }
}

Tick
predictAllReduce(const LogGPPoint &pt, CollAlg alg, int p,
                 std::size_t b)
{
    const int lg = ceilLog2(p);
    const int p2 = floorPow2(p);
    switch (alg) {
      case CollAlg::ArBinomial:
        // Binomial reduce to rank 0, then binomial broadcast.
        return 2 * static_cast<Tick>(lg) * msgTime(pt, b);
      case CollAlg::ArRecDouble: {
        // Full-vector exchanges into per-round staging; non-power-of-
        // two P folds the extras in before and broadcasts back after.
        Tick t = 0;
        for (int k = 0; (1 << k) < p2; ++k)
            t += msgTime(pt, b);
        if (p != p2)
            t += 2 * msgTime(pt, b);
        return t;
      }
      case CollAlg::ArRabenseifner: {
        // Reduce-scatter with halving payloads, then the mirror
        // allgather of the same segments.
        Tick t = 0;
        for (int k = 1; (1 << (k - 1)) < p; ++k)
            t += 2 * msgTime(pt, std::max<std::size_t>(b >> k, 1));
        return t;
      }
      default:
        panic("not an all-reduce algorithm");
    }
}

} // namespace

Tick
txSlot(const LogGPPoint &pt, std::size_t bytes)
{
    if (bytes == 0)
        return pt.gap;
    return static_cast<Tick>(static_cast<double>(bytes) * pt.gPerByte) +
           static_cast<Tick>(fragsOf(pt, bytes)) * pt.gap;
}

Tick
msgTime(const LogGPPoint &pt, std::size_t bytes)
{
    return pt.oSend + wireTime(pt, bytes) + pt.oRecv;
}

Tick
predictCollective(const LogGPPoint &pt, Coll coll, CollAlg alg,
                  int nprocs, std::size_t bytes)
{
    if (nprocs <= 1)
        return 0;
    switch (coll) {
      case Coll::Broadcast:
        return predictBroadcast(pt, alg, nprocs, bytes);
      case Coll::AllGather:
        return predictAllGather(pt, alg, nprocs, bytes);
      case Coll::AllToAll:
        return predictAllToAll(pt, alg, nprocs, bytes);
      case Coll::Barrier:
        return predictBarrier(pt, alg, nprocs);
      case Coll::AllReduce:
        return predictAllReduce(pt, alg, nprocs, bytes);
    }
    panic("unknown collective");
}

} // namespace coll
} // namespace nowcluster
