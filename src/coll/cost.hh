/**
 * @file
 * LogGP cost models for the tuned collective algorithms.
 *
 * Every algorithm in coll/tuned gets a closed-form completion-time
 * prediction from an operating point (L, o, g, G) -- the approach of
 * Barchet-Estefanel & Mounié's intra-cluster collective tuning work:
 * model each candidate, pick the argmin, and validate predicted vs
 * measured on a size x nprocs grid (`nowlab coll validate`).
 *
 * The formulas charge per-segment G and g terms for bulk payloads
 * (fragments of `LogGPPoint::fragment` bytes each occupy the tx
 * context for size*G + g, as in net/nic.cc), so the large-message
 * regime -- where the pipelined chain and scatter-allgather win --
 * is predicted, not guessed.
 */

#ifndef NOWCLUSTER_COLL_COST_HH_
#define NOWCLUSTER_COLL_COST_HH_

#include <cstddef>

#include "model/models.hh"

namespace nowcluster {
namespace coll {

/** The collective operations the tuned library implements. */
enum class Coll
{
    Broadcast,
    AllGather,
    AllToAll,
    Barrier,
    AllReduce,
};

constexpr int kNumColls = 5;

/** Every algorithm in the registry, across all collectives. */
enum class CollAlg
{
    // Broadcast (bytes = total payload).
    BcastFlat,       ///< Root sends to everyone in turn.
    BcastBinomial,   ///< Classic log P tree.
    BcastChain,      ///< Pipelined chain of fragment-size segments.
    BcastScatterAg,  ///< Van de Geijn: binomial scatter + ring allgather.
    // All-gather (bytes = per-rank block).
    AgRing,          ///< P-1 neighbor steps, bandwidth-friendly.
    AgRecDouble,     ///< log P XOR exchanges; power-of-two P only.
    AgBruck,         ///< ceil(log P) rounds, any P, final rotation.
    // All-to-all (bytes = per-destination block).
    A2aPairwise,     ///< P-1 rotation exchanges.
    A2aBruck,        ///< ceil(log P) rounds of packed blocks.
    // Barrier (bytes ignored).
    BarFlat,         ///< Counter at rank 0 + linear release.
    BarDissemination,///< ceil(log P) rounds of distance-2^r signals.
    BarTournament,   ///< log P elimination rounds + binomial release.
    // All-reduce (bytes = vector size).
    ArBinomial,      ///< Binomial reduce to 0 + binomial broadcast.
    ArRecDouble,     ///< log P exchange-and-combine rounds.
    ArRabenseifner,  ///< Reduce-scatter + allgather; power-of-two P.
};

constexpr int kNumAlgs = 15;

/**
 * Predicted completion time of one collective invocation: the span
 * from every processor entering (post-barrier) to the last processor
 * holding its result.
 *
 * `bytes` is the algorithm-relevant payload: total broadcast payload,
 * per-rank block for all-gather/all-to-all, vector size for
 * all-reduce, ignored for barrier.
 */
Tick predictCollective(const LogGPPoint &pt, Coll coll, CollAlg alg,
                       int nprocs, std::size_t bytes);

/** Serialized tx-context time for a b-byte transfer: b*G + nfrag*g. */
Tick txSlot(const LogGPPoint &pt, std::size_t bytes);

/** End-to-end time of one b-byte message: oSend + slot + L + oRecv. */
Tick msgTime(const LogGPPoint &pt, std::size_t bytes);

} // namespace coll
} // namespace nowcluster

#endif // NOWCLUSTER_COLL_COST_HH_
